//! `CoalescingDispatcher` — the request-shaping layer in front of a shared
//! model backend.
//!
//! PR 3 made `ChatModel` thread-safe and batched; this module is the
//! follow-up it left open: once many concurrent callers (detection workers,
//! server request handlers) share one backend, the dispatcher decides *what
//! actually reaches it*. Three policies compose here:
//!
//! * **Single-flight coalescing** — concurrent identical requests (same
//!   [`ChatRequest::fingerprint`]) share one in-flight completion: the first
//!   arrival executes, later arrivals wait and receive a clone of its
//!   answer. With a temperature-0 deterministic backend this is invisible
//!   in the output and saves the duplicate calls a cold cache lets through.
//!   This holds across *batches* too: two concurrent identical
//!   [`ChatModel::complete_batch`] calls register in the same flight table,
//!   so each distinct prompt reaches the backend exactly once.
//! * **Batch windows** — the first caller with a *distinct* pending request
//!   becomes the batch leader: it waits up to
//!   [`DispatcherConfig::batch_window`] for other distinct requests to
//!   arrive, then forwards the whole set as one
//!   [`ChatModel::complete_batch`] call, the shape hosted APIs amortise.
//! * **Token-bucket rate limiting** — every dispatch first takes one token
//!   per distinct prompt from a bucket refilled at
//!   [`RateLimit::per_sec`]; when the bucket is dry the *leader* sleeps
//!   (followers keep piggybacking on its flight), bounding the request
//!   rate the backend sees regardless of caller concurrency.
//!
//! The dispatcher deliberately does **not** memoise finished answers — that
//! is [`crate::CachedLlm`]'s job; stack them as
//! `CachedLlm::new(CoalescingDispatcher::new(backend, config))` so repeats
//! hit the cache and only genuine cold misses reach the dispatch queue.

use crate::chat::{ChatModel, ChatRequest, ChatResponse};
use crate::error::{LlmError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One backend batch round-trip, delivered to a [`DispatchObserver`] right
/// after the batch resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEvent {
    /// Distinct prompts the dispatched batch carried.
    pub batch_size: usize,
    /// Dispatcher-lifetime coalesced count at dispatch time (same counter
    /// as [`DispatcherStats::coalesced`]).
    pub coalesced_total: usize,
    /// Time the batch leader slept on the token bucket before dispatching.
    pub rate_limit_wait: Duration,
    /// Wall time of the backend `complete_batch` call itself.
    pub backend_elapsed: Duration,
}

/// Observer of backend round-trips, attached with
/// [`CoalescingDispatcher::set_observer`]. Fired from whichever thread led
/// the batch (a request worker, a detection worker), so implementations
/// must be `Send + Sync` and cheap — the callback runs before the batch's
/// waiters are notified.
pub trait DispatchObserver: Send + Sync {
    /// Called once per backend `complete_batch` call.
    fn batch_dispatched(&self, event: BatchEvent);
}

/// A token-bucket rate limit: sustained `per_sec` requests per second with
/// bursts of up to `burst` requests passing untrottled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained requests per second handed to the backend. Must be > 0.
    pub per_sec: f64,
    /// Bucket capacity: how many requests may pass back-to-back after idle
    /// time. Values below 1 are treated as 1.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `per_sec` sustained requests/s with `burst` capacity.
    pub fn new(per_sec: f64, burst: f64) -> Self {
        RateLimit { per_sec, burst }
    }
}

/// Tunables of a [`CoalescingDispatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatcherConfig {
    /// How long a batch leader waits for more distinct requests before
    /// dispatching. Zero disables the wait (each distinct single request
    /// dispatches immediately; identical in-flight requests still coalesce).
    pub batch_window: Duration,
    /// Dispatch early once this many distinct requests are pending.
    pub max_batch: usize,
    /// Optional token-bucket rate limit on dispatched prompts.
    pub rate_limit: Option<RateLimit>,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig { batch_window: Duration::from_millis(2), max_batch: 64, rate_limit: None }
    }
}

/// Counter snapshot; see the field docs for what each counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatcherStats {
    /// Requests that piggybacked on an identical request already pending or
    /// in flight (single-flight merges, in-batch duplicates, and cross-batch
    /// merges) — each one is a completion the backend never saw.
    pub coalesced: usize,
    /// `complete_batch` calls issued to the backend.
    pub batches: usize,
    /// Distinct prompts those batches carried (`batched_prompts > batches`
    /// means at least one multi-prompt window was merged).
    pub batched_prompts: usize,
    /// Dispatches that found the token bucket dry and had to sleep.
    pub rate_limit_waits: usize,
    /// Total time dispatches spent sleeping on the bucket, in milliseconds.
    pub rate_limited_ms: u64,
}

/// One pending-or-in-flight completion, keyed by request fingerprint.
struct Flight {
    result: Option<Result<ChatResponse>>,
    /// Callers that will read `result`; the last reader removes the entry,
    /// so finished answers are never memoised here (that is the cache's
    /// job) and a later identical request starts a fresh flight.
    waiters: usize,
}

/// Queue state guarded by one mutex; the condvar signals both "a new
/// request arrived" (ends a leader's window early at `max_batch`) and
/// "results landed" (wakes waiters).
struct DispatchQueue {
    /// Distinct requests awaiting a leader, in arrival order.
    pending: Vec<(u64, ChatRequest)>,
    flights: HashMap<u64, Flight>,
    /// True while a leader is inside its batch window: arrivals during the
    /// window join `pending` and will be drained by that leader.
    collecting: bool,
}

struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

/// The dispatcher; see the module docs for the policy stack. Wraps any
/// [`ChatModel`] and is itself one, so it composes with [`crate::CachedLlm`]
/// and `Transcript` like any other layer.
///
/// ```
/// use cocoon_llm::{
///     ChatModel, ChatRequest, CoalescingDispatcher, DispatcherConfig, RateLimit, ScriptedLlm,
/// };
/// use std::time::Duration;
///
/// // The server's shape: a short batch window and a token-bucket limit on
/// // what reaches the backend.
/// let config = DispatcherConfig {
///     batch_window: Duration::from_millis(2),
///     max_batch: 64,
///     rate_limit: Some(RateLimit::new(100.0, 10.0)),
/// };
/// let dispatcher = CoalescingDispatcher::new(ScriptedLlm::new(["an answer"]), config);
/// let response = dispatcher.complete(&ChatRequest::simple("prompt")).unwrap();
/// assert_eq!(response.content, "an answer");
/// assert_eq!(dispatcher.stats().batches, 1);
/// ```
pub struct CoalescingDispatcher<M> {
    inner: M,
    config: DispatcherConfig,
    queue: Mutex<DispatchQueue>,
    signal: Condvar,
    bucket: Option<Mutex<TokenBucket>>,
    coalesced: AtomicUsize,
    batches: AtomicUsize,
    batched_prompts: AtomicUsize,
    rate_limit_waits: AtomicUsize,
    rate_limited_ns: AtomicU64,
    observer: Mutex<Option<Arc<dyn DispatchObserver>>>,
}

impl<M: ChatModel> CoalescingDispatcher<M> {
    /// A dispatcher applying `config`'s policies in front of `inner`.
    pub fn new(inner: M, config: DispatcherConfig) -> Self {
        let bucket = config.rate_limit.map(|limit| {
            Mutex::new(TokenBucket { tokens: limit.burst.max(1.0), last_refill: Instant::now() })
        });
        CoalescingDispatcher {
            inner,
            config,
            queue: Mutex::new(DispatchQueue {
                pending: Vec::new(),
                flights: HashMap::new(),
                collecting: false,
            }),
            signal: Condvar::new(),
            bucket,
            coalesced: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            batched_prompts: AtomicUsize::new(0),
            rate_limit_waits: AtomicUsize::new(0),
            rate_limited_ns: AtomicU64::new(0),
            observer: Mutex::new(None),
        }
    }

    /// Attaches a round-trip observer; replaces any previous one.
    pub fn set_observer(&self, observer: Arc<dyn DispatchObserver>) {
        *self.observer.lock().expect("observer lock") = Some(observer);
    }

    /// A dispatcher with default windowing and no rate limit.
    pub fn with_defaults(inner: M) -> Self {
        Self::new(inner, DispatcherConfig::default())
    }

    /// The configured policy stack.
    pub fn config(&self) -> &DispatcherConfig {
        &self.config
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Current counter values.
    pub fn stats(&self) -> DispatcherStats {
        DispatcherStats {
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_prompts: self.batched_prompts.load(Ordering::Relaxed),
            rate_limit_waits: self.rate_limit_waits.load(Ordering::Relaxed),
            rate_limited_ms: self.rate_limited_ns.load(Ordering::Relaxed) / 1_000_000,
        }
    }

    /// Takes `n` tokens from the bucket, sleeping while it is dry. The
    /// demand is clamped to the bucket capacity so an oversized batch
    /// drains the bucket instead of deadlocking on tokens it can never
    /// hold. No-op without a configured rate limit. Returns the total time
    /// slept so dispatch events can report the rate-limit share.
    fn throttle(&self, n: usize) -> Duration {
        let Some(bucket) = &self.bucket else { return Duration::ZERO };
        let limit = self.config.rate_limit.expect("bucket implies limit");
        let per_sec = limit.per_sec.max(f64::MIN_POSITIVE);
        let capacity = limit.burst.max(1.0);
        let need = (n as f64).min(capacity);
        let mut waited = Duration::ZERO;
        loop {
            let sleep_for = {
                let mut b = bucket.lock().expect("bucket lock");
                let now = Instant::now();
                let refill = now.duration_since(b.last_refill).as_secs_f64() * per_sec;
                b.tokens = (b.tokens + refill).min(capacity);
                b.last_refill = now;
                if b.tokens >= need {
                    b.tokens -= need;
                    None
                } else {
                    Some(Duration::from_secs_f64((need - b.tokens) / per_sec))
                }
            };
            let Some(sleep_for) = sleep_for else { break };
            if waited.is_zero() {
                self.rate_limit_waits.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(sleep_for);
            waited += sleep_for;
        }
        if !waited.is_zero() {
            self.rate_limited_ns.fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        }
        waited
    }

    /// Blocks until `key`'s flight has a result, consumes one waiter slot,
    /// and returns a clone of the result (the last reader removes the
    /// flight).
    fn await_result(
        &self,
        mut queue: MutexGuard<'_, DispatchQueue>,
        key: u64,
    ) -> Result<ChatResponse> {
        loop {
            if queue.flights.get(&key).is_some_and(|f| f.result.is_some()) {
                break;
            }
            queue = self.signal.wait(queue).expect("dispatch lock");
        }
        let flight = queue.flights.get_mut(&key).expect("flight exists until last reader");
        let result = flight.result.clone().expect("checked above");
        flight.waiters -= 1;
        if flight.waiters == 0 {
            queue.flights.remove(&key);
        }
        result
    }

    /// The error published for slots a misbehaving backend left unanswered
    /// — every flight must resolve, or its waiters block forever.
    fn short_batch_error() -> LlmError {
        LlmError::Completion("backend returned fewer responses than requests".into())
    }

    /// Runs the backend batch with a panic guard: a panicking backend
    /// becomes per-request errors instead of unwinding the leader and
    /// stranding every waiter (present and future) on unresolved flights.
    /// `AssertUnwindSafe` is sound here — the dispatcher reads nothing
    /// from the backend after a panic, and its own state is only touched
    /// after this returns.
    fn guarded_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.complete_batch(requests)
        }))
        .unwrap_or_else(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            let error = LlmError::Completion(format!("backend panicked: {detail}"));
            requests.iter().map(|_| Err(error.clone())).collect()
        })
    }

    /// Executes one drained batch against the backend (throttled), then
    /// publishes each result to its flight. A backend that returns fewer
    /// responses than requests (the trait cannot enforce the length) fails
    /// the unanswered tail instead of stranding its waiters.
    fn dispatch(&self, batch: Vec<(u64, ChatRequest)>) {
        let rate_limit_wait = self.throttle(batch.len());
        let requests: Vec<ChatRequest> = batch.iter().map(|(_, r)| r.clone()).collect();
        let backend_started = Instant::now();
        let mut responses = self.guarded_batch(&requests).into_iter();
        let backend_elapsed = backend_started.elapsed();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_prompts.fetch_add(batch.len(), Ordering::Relaxed);
        let observer = self.observer.lock().expect("observer lock").clone();
        if let Some(observer) = observer {
            observer.batch_dispatched(BatchEvent {
                batch_size: batch.len(),
                coalesced_total: self.coalesced.load(Ordering::Relaxed),
                rate_limit_wait,
                backend_elapsed,
            });
        }
        let mut queue = self.queue.lock().expect("dispatch lock");
        for (key, _) in batch {
            let response = responses.next().unwrap_or_else(|| Err(Self::short_batch_error()));
            if let Some(flight) = queue.flights.get_mut(&key) {
                flight.result = Some(response);
            }
        }
        drop(queue);
        self.signal.notify_all();
    }
}

impl<M: ChatModel> ChatModel for CoalescingDispatcher<M> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
        let key = request.fingerprint();
        let mut queue = self.queue.lock().expect("dispatch lock");
        if let Some(flight) = queue.flights.get_mut(&key) {
            // Identical request already pending or in flight: piggyback.
            flight.waiters += 1;
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return self.await_result(queue, key);
        }
        queue.flights.insert(key, Flight { result: None, waiters: 1 });
        queue.pending.push((key, request.clone()));
        if queue.collecting {
            // A leader's window is open; it will drain us with its batch.
            // Wake it so a window that just reached `max_batch` dispatches
            // now instead of sleeping out its full duration.
            self.signal.notify_all();
            return self.await_result(queue, key);
        }
        // Become the batch leader: hold the window open, then drain
        // everything that arrived. `max_batch` ends the window early; the
        // drain still takes every pending request (a late arrival between
        // the last wake and the drain rides along rather than waiting for
        // a leader that might never come).
        queue.collecting = true;
        let deadline = Instant::now() + self.config.batch_window;
        while queue.pending.len() < self.config.max_batch {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, _) = self.signal.wait_timeout(queue, remaining).expect("dispatch lock");
            queue = guard;
        }
        let batch = std::mem::take(&mut queue.pending);
        queue.collecting = false;
        drop(queue);
        self.dispatch(batch);
        self.await_result(self.queue.lock().expect("dispatch lock"), key)
    }

    /// Batch calls already arrive amortised; the dispatcher still dedupes
    /// identical prompts within the batch (each duplicate counts as
    /// coalesced) and routes the distinct remainder through the same
    /// single-flight table the [`complete`](ChatModel::complete) path uses.
    /// That makes coalescing work *across* batches too: when two concurrent
    /// identical batches arrive, the first to register a prompt dispatches
    /// it and the second piggybacks on the flight instead of paying a
    /// duplicate backend call. Prompts this call does own are dispatched at
    /// once (no window — the batch is already amortised), or handed to an
    /// open batch window's leader if one is collecting.
    fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
        // In-batch dedupe: map every request slot to its first occurrence.
        let mut first_slot: HashMap<u64, usize> = HashMap::with_capacity(requests.len());
        let mut distinct: Vec<(u64, ChatRequest)> = Vec::with_capacity(requests.len());
        let mut slots: Vec<usize> = Vec::with_capacity(requests.len());
        for request in requests {
            let key = request.fingerprint();
            let slot = match first_slot.get(&key) {
                Some(&slot) => {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    slot
                }
                None => {
                    let slot = distinct.len();
                    first_slot.insert(key, slot);
                    distinct.push((key, request.clone()));
                    slot
                }
            };
            slots.push(slot);
        }
        if distinct.is_empty() {
            return Vec::new();
        }

        // Cross-batch single-flight: register every distinct prompt in the
        // flights table. Prompts already pending or in flight (registered
        // by a concurrent batch or a `complete` caller) are piggybacked;
        // the rest become flights owned by this call.
        let mut owned: Vec<(u64, ChatRequest)> = Vec::with_capacity(distinct.len());
        {
            let mut queue = self.queue.lock().expect("dispatch lock");
            for (key, request) in &distinct {
                match queue.flights.get_mut(key) {
                    Some(flight) => {
                        flight.waiters += 1;
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        queue.flights.insert(*key, Flight { result: None, waiters: 1 });
                        owned.push((*key, request.clone()));
                    }
                }
            }
            if !owned.is_empty() && queue.collecting {
                // A window leader is collecting: hand it our prompts so the
                // backend sees one merged batch, and wake it in case the
                // arrivals push `pending` past `max_batch`.
                queue.pending.append(&mut owned);
                self.signal.notify_all();
            }
        }
        if !owned.is_empty() {
            self.dispatch(owned);
        }

        // Collect each distinct prompt's result (piggybacked flights may
        // resolve later, so this can block on the other dispatcher), then
        // scatter to the original slots.
        let results: Vec<Result<ChatResponse>> = distinct
            .iter()
            .map(|(key, _)| self.await_result(self.queue.lock().expect("dispatch lock"), *key))
            .collect();
        slots.into_iter().map(|i| results[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::ScriptedLlm;
    use std::sync::atomic::AtomicUsize;

    /// Records the size of every batch the backend receives and answers
    /// each prompt deterministically by echoing it.
    struct EchoBackend {
        batch_sizes: Mutex<Vec<usize>>,
        calls: AtomicUsize,
    }

    impl EchoBackend {
        fn new() -> Self {
            EchoBackend { batch_sizes: Mutex::new(Vec::new()), calls: AtomicUsize::new(0) }
        }
    }

    impl ChatModel for EchoBackend {
        fn model_name(&self) -> &str {
            "echo"
        }

        fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(ChatResponse {
                content: format!("echo: {}", request.user_text()),
                usage: Default::default(),
            })
        }

        fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
            self.batch_sizes.lock().unwrap().push(requests.len());
            requests.iter().map(|r| self.complete(r)).collect()
        }
    }

    fn windowed(ms: u64) -> DispatcherConfig {
        DispatcherConfig { batch_window: Duration::from_millis(ms), ..DispatcherConfig::default() }
    }

    #[test]
    fn single_request_passes_through() {
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(0));
        let out = d.complete(&ChatRequest::simple("hello")).unwrap();
        assert_eq!(out.content, "echo: hello");
        let stats = d.stats();
        assert_eq!(stats.coalesced, 0);
        assert_eq!((stats.batches, stats.batched_prompts), (1, 1));
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        // A long window guarantees the leader is still collecting when the
        // other threads arrive with the identical prompt.
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(200));
        let answers: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| d.complete(&ChatRequest::simple("same")).unwrap().content))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(answers.iter().all(|a| a == "echo: same"));
        let stats = d.stats();
        assert_eq!(stats.coalesced, 3, "three followers piggybacked");
        assert_eq!(d.inner().calls.load(Ordering::Relaxed), 1, "backend saw one call");
    }

    #[test]
    fn distinct_requests_merge_into_one_batch_window() {
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(200));
        let d = &d;
        let answers: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    s.spawn(move || {
                        d.complete(&ChatRequest::simple(format!("p{i}"))).unwrap().content
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = answers.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["echo: p0", "echo: p1", "echo: p2"]);
        let sizes = d.inner().batch_sizes.lock().unwrap().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 3, "every prompt dispatched once");
        assert!(
            sizes.iter().any(|&s| s > 1),
            "a window with three concurrent distinct prompts must merge some: {sizes:?}"
        );
    }

    #[test]
    fn max_batch_ends_the_window_early() {
        let config = DispatcherConfig {
            batch_window: Duration::from_secs(60),
            max_batch: 1,
            ..DispatcherConfig::default()
        };
        let d = CoalescingDispatcher::new(EchoBackend::new(), config);
        // With max_batch=1 the leader must dispatch immediately instead of
        // sleeping out the 60s window.
        let start = Instant::now();
        d.complete(&ChatRequest::simple("now")).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn arrivals_filling_the_window_wake_the_leader() {
        // A 60s window with max_batch=2: the second distinct arrival must
        // wake the sleeping leader, not wait out the hour.
        let config = DispatcherConfig {
            batch_window: Duration::from_secs(60),
            max_batch: 2,
            ..DispatcherConfig::default()
        };
        let d = CoalescingDispatcher::new(EchoBackend::new(), config);
        let d = &d;
        let start = Instant::now();
        std::thread::scope(|s| {
            let a = s.spawn(|| d.complete(&ChatRequest::simple("a")).unwrap().content);
            let b = s.spawn(|| d.complete(&ChatRequest::simple("b")).unwrap().content);
            assert_eq!(a.join().unwrap(), "echo: a");
            assert_eq!(b.join().unwrap(), "echo: b");
        });
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "a full window must dispatch early, not sleep out its duration"
        );
        assert_eq!(d.inner().batch_sizes.lock().unwrap().iter().sum::<usize>(), 2);
    }

    #[test]
    fn batch_calls_dedupe_identical_prompts() {
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(0));
        let requests = vec![
            ChatRequest::simple("a"),
            ChatRequest::simple("b"),
            ChatRequest::simple("a"),
            ChatRequest::simple("a"),
        ];
        let responses = d.complete_batch(&requests);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].as_ref().unwrap().content, "echo: a");
        assert_eq!(responses[2].as_ref().unwrap().content, "echo: a");
        let stats = d.stats();
        assert_eq!(stats.coalesced, 2, "two duplicate 'a' prompts merged");
        assert_eq!(d.inner().batch_sizes.lock().unwrap().as_slice(), &[2]);
    }

    /// Echoes prompts like [`EchoBackend`], but holds every batch inside
    /// the backend until the test releases the gate — so a second caller
    /// provably arrives while the first batch is still in flight.
    struct GatedBackend {
        entered: AtomicUsize,
        release: std::sync::atomic::AtomicBool,
        batch_sizes: Mutex<Vec<usize>>,
    }

    impl GatedBackend {
        fn new() -> Self {
            GatedBackend {
                entered: AtomicUsize::new(0),
                release: std::sync::atomic::AtomicBool::new(false),
                batch_sizes: Mutex::new(Vec::new()),
            }
        }

        fn wait_until(&self, what: impl Fn() -> bool) {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !what() {
                assert!(Instant::now() < deadline, "gated backend timed out");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    impl ChatModel for GatedBackend {
        fn model_name(&self) -> &str {
            "gated"
        }

        fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
            Ok(ChatResponse {
                content: format!("echo: {}", request.user_text()),
                usage: Default::default(),
            })
        }

        fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
            self.entered.fetch_add(1, Ordering::Relaxed);
            self.wait_until(|| self.release.load(Ordering::Relaxed));
            self.batch_sizes.lock().unwrap().push(requests.len());
            requests.iter().map(|r| self.complete(r)).collect()
        }
    }

    #[test]
    fn concurrent_identical_batches_single_flight() {
        // Two identical batches, the second arriving while the first is
        // provably still inside the backend. Cross-batch single-flight must
        // dispatch each distinct prompt exactly once: the first batch owns
        // the flights, the second piggybacks on them.
        let d = CoalescingDispatcher::new(GatedBackend::new(), windowed(0));
        let d = &d;
        let requests: Vec<ChatRequest> =
            (0..4).map(|i| ChatRequest::simple(format!("p{i}"))).collect();
        let (first, second) = std::thread::scope(|s| {
            let first = {
                let requests = requests.clone();
                s.spawn(move || d.complete_batch(&requests))
            };
            // Wait until the first batch is inside the backend…
            d.inner().wait_until(|| d.inner().entered.load(Ordering::Relaxed) >= 1);
            let second = {
                let requests = requests.clone();
                s.spawn(move || d.complete_batch(&requests))
            };
            // …and until the second has registered (its piggybacks show up
            // in the coalesced counter), then let the backend answer.
            d.inner().wait_until(|| d.stats().coalesced >= 4);
            d.inner().release.store(true, Ordering::Relaxed);
            (first.join().unwrap(), second.join().unwrap())
        });
        for responses in [&first, &second] {
            assert_eq!(responses.len(), 4);
            for (i, r) in responses.iter().enumerate() {
                assert_eq!(r.as_ref().unwrap().content, format!("echo: p{i}"));
            }
        }
        let sizes = d.inner().batch_sizes.lock().unwrap().clone();
        assert_eq!(
            sizes.iter().sum::<usize>(),
            4,
            "each distinct prompt reaches the backend exactly once across both batches: {sizes:?}"
        );
        assert_eq!(d.stats().coalesced, 4, "the second batch piggybacked all four prompts");
        assert_eq!(d.stats().batches, 1);
    }

    #[test]
    fn sequential_identical_batches_both_dispatch() {
        // Cross-batch single-flight is not a cache: once the first batch's
        // flights resolve and drain, a later identical batch re-dispatches.
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(0));
        let requests = vec![ChatRequest::simple("a"), ChatRequest::simple("b")];
        d.complete_batch(&requests);
        d.complete_batch(&requests);
        assert_eq!(d.inner().batch_sizes.lock().unwrap().iter().sum::<usize>(), 4);
        assert_eq!(d.stats().coalesced, 0);
    }

    #[test]
    fn batch_prompts_join_an_open_window() {
        // A complete() leader holds a 200ms window open; a complete_batch
        // arriving inside it must hand the leader its prompts so the
        // backend sees one merged dispatch.
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(200));
        let d = &d;
        std::thread::scope(|s| {
            let leader = s.spawn(|| d.complete(&ChatRequest::simple("single")).unwrap().content);
            // Give the leader time to open its window.
            std::thread::sleep(Duration::from_millis(30));
            let batch = s.spawn(|| {
                d.complete_batch(&[ChatRequest::simple("b0"), ChatRequest::simple("b1")])
            });
            assert_eq!(leader.join().unwrap(), "echo: single");
            let responses = batch.join().unwrap();
            assert_eq!(responses[0].as_ref().unwrap().content, "echo: b0");
            assert_eq!(responses[1].as_ref().unwrap().content, "echo: b1");
        });
        let sizes = d.inner().batch_sizes.lock().unwrap().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 3, "every prompt dispatched once: {sizes:?}");
        assert_eq!(sizes.len(), 1, "window merged the batch into one dispatch: {sizes:?}");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(0));
        assert!(d.complete_batch(&[]).is_empty());
        assert_eq!(d.stats().batches, 0);
    }

    #[test]
    fn rate_limit_enforces_waits() {
        let config = DispatcherConfig {
            batch_window: Duration::ZERO,
            rate_limit: Some(RateLimit::new(50.0, 1.0)),
            ..DispatcherConfig::default()
        };
        let d = CoalescingDispatcher::new(EchoBackend::new(), config);
        let start = Instant::now();
        d.complete(&ChatRequest::simple("first")).unwrap(); // burst token
        d.complete(&ChatRequest::simple("second")).unwrap(); // must wait ~20ms
        let elapsed = start.elapsed();
        let stats = d.stats();
        assert!(stats.rate_limit_waits >= 1, "second dispatch found the bucket dry");
        assert!(
            elapsed >= Duration::from_millis(10),
            "a 50/s limit must delay the second call: {elapsed:?}"
        );
        assert!(stats.rate_limited_ms >= 10);
    }

    #[test]
    fn oversized_batch_does_not_deadlock_on_a_small_bucket() {
        let config = DispatcherConfig {
            batch_window: Duration::ZERO,
            rate_limit: Some(RateLimit::new(1000.0, 2.0)),
            ..DispatcherConfig::default()
        };
        let d = CoalescingDispatcher::new(EchoBackend::new(), config);
        let requests: Vec<ChatRequest> =
            (0..8).map(|i| ChatRequest::simple(format!("p{i}"))).collect();
        let responses = d.complete_batch(&requests);
        assert_eq!(responses.len(), 8);
        assert!(responses.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn errors_propagate_per_request() {
        // Scripted backend with one answer: second distinct prompt gets
        // Empty, and the error reaches exactly its caller.
        let d = CoalescingDispatcher::new(ScriptedLlm::new(["only"]), windowed(0));
        assert!(d.complete(&ChatRequest::simple("a")).is_ok());
        assert!(d.complete(&ChatRequest::simple("b")).is_err());
    }

    /// Misbehaves by answering only the first request of every batch.
    struct ShortBatchBackend;

    impl ChatModel for ShortBatchBackend {
        fn model_name(&self) -> &str {
            "short"
        }

        fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
            Ok(ChatResponse { content: request.user_text(), usage: Default::default() })
        }

        fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
            requests.iter().take(1).map(|r| self.complete(r)).collect()
        }
    }

    #[test]
    fn short_batch_responses_fail_the_tail_instead_of_hanging() {
        // Single-request path through a window: both callers must resolve
        // even though the backend answers only one of the two.
        let d = CoalescingDispatcher::new(ShortBatchBackend, windowed(200));
        let d = &d;
        let results: Vec<Result<ChatResponse>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|i| s.spawn(move || d.complete(&ChatRequest::simple(format!("p{i}")))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let answered = results.iter().filter(|r| r.is_ok()).count();
        let failed = results.iter().filter(|r| r.is_err()).count();
        assert!(answered >= 1, "{results:?}");
        assert_eq!(answered + failed, 2, "no caller may hang: {results:?}");

        // Batch path: the scatter must not panic or drop slots either.
        let responses = d.complete_batch(&[ChatRequest::simple("a"), ChatRequest::simple("b")]);
        assert_eq!(responses.len(), 2);
        assert!(responses[0].is_ok());
        assert!(responses[1].is_err());
    }

    /// Panics on every batch — models a backend bug.
    struct PanickingBackend;

    impl ChatModel for PanickingBackend {
        fn model_name(&self) -> &str {
            "panicking"
        }

        fn complete(&self, _request: &ChatRequest) -> Result<ChatResponse> {
            panic!("backend exploded");
        }

        fn complete_batch(&self, _requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
            panic!("backend exploded");
        }
    }

    #[test]
    fn backend_panics_become_errors_not_hangs() {
        let d = CoalescingDispatcher::new(PanickingBackend, windowed(0));
        let err = d.complete(&ChatRequest::simple("p")).unwrap_err();
        assert!(err.to_string().contains("backend exploded"), "{err}");
        // The flight was cleaned up: a retry dispatches again (and errors
        // again) instead of hanging on a dead flight.
        assert!(d.complete(&ChatRequest::simple("p")).is_err());
        // Batch path survives too.
        let responses = d.complete_batch(&[ChatRequest::simple("a")]);
        assert!(responses[0].is_err());
    }

    #[test]
    fn observer_sees_every_backend_round_trip() {
        struct Collect(Mutex<Vec<BatchEvent>>);
        impl DispatchObserver for Collect {
            fn batch_dispatched(&self, event: BatchEvent) {
                self.0.lock().unwrap().push(event);
            }
        }
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(0));
        let collect = Arc::new(Collect(Mutex::new(Vec::new())));
        d.set_observer(collect.clone());
        d.complete(&ChatRequest::simple("one")).unwrap();
        d.complete_batch(&[
            ChatRequest::simple("a"),
            ChatRequest::simple("b"),
            ChatRequest::simple("a"),
        ]);
        let events = collect.0.lock().unwrap().clone();
        assert_eq!(events.len(), 2, "one event per backend call");
        assert_eq!(events[0].batch_size, 1);
        assert_eq!(events[1].batch_size, 2, "in-batch duplicate deduped before dispatch");
        assert_eq!(events[1].coalesced_total, 1);
        assert!(events.iter().all(|e| e.rate_limit_wait.is_zero()), "no limit configured");
    }

    #[test]
    fn observer_reports_rate_limit_sleeps() {
        struct Collect(Mutex<Vec<BatchEvent>>);
        impl DispatchObserver for Collect {
            fn batch_dispatched(&self, event: BatchEvent) {
                self.0.lock().unwrap().push(event);
            }
        }
        let config = DispatcherConfig {
            batch_window: Duration::ZERO,
            rate_limit: Some(RateLimit::new(50.0, 1.0)),
            ..DispatcherConfig::default()
        };
        let d = CoalescingDispatcher::new(EchoBackend::new(), config);
        let collect = Arc::new(Collect(Mutex::new(Vec::new())));
        d.set_observer(collect.clone());
        d.complete(&ChatRequest::simple("first")).unwrap();
        d.complete(&ChatRequest::simple("second")).unwrap();
        let events = collect.0.lock().unwrap().clone();
        assert_eq!(events.len(), 2);
        assert!(events[1].rate_limit_wait >= Duration::from_millis(10), "{events:?}");
    }

    #[test]
    fn sequential_identical_requests_are_not_memoised() {
        // The dispatcher is not a cache: once a flight's waiters have all
        // read, an identical later request dispatches again.
        let d = CoalescingDispatcher::new(EchoBackend::new(), windowed(0));
        d.complete(&ChatRequest::simple("again")).unwrap();
        d.complete(&ChatRequest::simple("again")).unwrap();
        assert_eq!(d.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(d.stats().coalesced, 0);
    }
}
