//! Call transcripts: a recording wrapper around any [`ChatModel`].
//!
//! Cocoon is a human-in-the-loop system; its UI shows the LLM reasoning for
//! every step (Appendix A). The transcript captures each exchange so reports
//! can replay what the model was asked and answered, and so benches can
//! account token usage.

use crate::chat::{ChatModel, ChatRequest, ChatResponse, Usage};
use crate::error::Result;
use std::sync::Mutex;

/// One recorded exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    /// The user-visible prompt text.
    pub prompt: String,
    /// The model's answer.
    pub response: String,
    /// Token accounting for the exchange.
    pub usage: Usage,
}

/// Records every exchange passing through an inner model.
///
/// Thread-safe: concurrent detection workers append under a `Mutex`, so
/// usage accounting stays exact at any thread count (the *order* of
/// exchanges follows completion order, which under concurrency may differ
/// from prompt submission order).
pub struct Transcript<M> {
    inner: M,
    exchanges: Mutex<Vec<Exchange>>,
}

impl<M: ChatModel> Transcript<M> {
    /// Starts recording over `inner`.
    pub fn new(inner: M) -> Self {
        Transcript { inner, exchanges: Mutex::new(Vec::new()) }
    }

    /// All exchanges so far, in order.
    pub fn exchanges(&self) -> Vec<Exchange> {
        self.exchanges.lock().expect("exchanges lock").clone()
    }

    /// Number of completed calls.
    pub fn call_count(&self) -> usize {
        self.exchanges.lock().expect("exchanges lock").len()
    }

    /// Total token usage across all calls.
    pub fn total_usage(&self) -> Usage {
        let exchanges = self.exchanges.lock().expect("exchanges lock");
        Usage {
            prompt_tokens: exchanges.iter().map(|e| e.usage.prompt_tokens).sum(),
            completion_tokens: exchanges.iter().map(|e| e.usage.completion_tokens).sum(),
        }
    }

    /// Unwraps the inner model.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: ChatModel> ChatModel for Transcript<M> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
        let response = self.inner.complete(request)?;
        self.exchanges.lock().expect("exchanges lock").push(Exchange {
            prompt: request.user_text(),
            response: response.content.clone(),
            usage: response.usage,
        });
        Ok(response)
    }

    fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
        let responses = self.inner.complete_batch(requests);
        let mut exchanges = self.exchanges.lock().expect("exchanges lock");
        for (request, response) in requests.iter().zip(&responses) {
            if let Ok(response) = response {
                exchanges.push(Exchange {
                    prompt: request.user_text(),
                    response: response.content.clone(),
                    usage: response.usage,
                });
            }
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::ScriptedLlm;

    #[test]
    fn records_exchanges_and_usage() {
        let t = Transcript::new(ScriptedLlm::new(["resp one", "response two longer"]));
        t.complete(&ChatRequest::simple("first prompt")).unwrap();
        t.complete(&ChatRequest::simple("second")).unwrap();
        assert_eq!(t.call_count(), 2);
        let ex = t.exchanges();
        assert_eq!(ex[0].prompt, "first prompt");
        assert_eq!(ex[0].response, "resp one");
        assert_eq!(t.total_usage().prompt_tokens, 3);
        assert_eq!(t.total_usage().completion_tokens, 5);
    }

    #[test]
    fn failures_not_recorded() {
        let t = Transcript::new(ScriptedLlm::new(Vec::<String>::new()));
        assert!(t.complete(&ChatRequest::simple("x")).is_err());
        assert_eq!(t.call_count(), 0);
    }

    #[test]
    fn passthrough_name() {
        let t = Transcript::new(ScriptedLlm::new(["a"]));
        assert_eq!(t.model_name(), "scripted");
    }

    #[test]
    fn batch_records_successes_only() {
        let t = Transcript::new(ScriptedLlm::new(["alpha"]));
        let requests = vec![ChatRequest::simple("p1"), ChatRequest::simple("p2")];
        let responses = t.complete_batch(&requests);
        assert!(responses[0].is_ok());
        assert!(responses[1].is_err());
        assert_eq!(t.call_count(), 1);
        assert_eq!(t.exchanges()[0].prompt, "p1");
    }

    #[test]
    fn usage_accounting_is_exact_under_concurrency() {
        // 8 threads × identical two-token prompts: the totals must be exact,
        // not approximately right — the Mutex guards every append.
        let script: Vec<String> = (0..8).map(|i| format!("answer {i}")).collect();
        let t = Transcript::new(ScriptedLlm::new(script));
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| t.complete(&ChatRequest::simple("two tokens")).unwrap());
            }
        });
        assert_eq!(t.call_count(), 8);
        assert_eq!(t.total_usage().prompt_tokens, 16);
        assert_eq!(t.total_usage().completion_tokens, 16);
    }
}
