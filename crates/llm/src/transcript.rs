//! Call transcripts: a recording wrapper around any [`ChatModel`].
//!
//! Cocoon is a human-in-the-loop system; its UI shows the LLM reasoning for
//! every step (Appendix A). The transcript captures each exchange so reports
//! can replay what the model was asked and answered, and so benches can
//! account token usage.

use crate::chat::{ChatModel, ChatRequest, ChatResponse, Usage};
use crate::error::Result;
use std::cell::RefCell;

/// One recorded exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    pub prompt: String,
    pub response: String,
    pub usage: Usage,
}

/// Records every exchange passing through an inner model.
pub struct Transcript<M> {
    inner: M,
    exchanges: RefCell<Vec<Exchange>>,
}

impl<M: ChatModel> Transcript<M> {
    pub fn new(inner: M) -> Self {
        Transcript { inner, exchanges: RefCell::new(Vec::new()) }
    }

    /// All exchanges so far, in order.
    pub fn exchanges(&self) -> Vec<Exchange> {
        self.exchanges.borrow().clone()
    }

    /// Number of completed calls.
    pub fn call_count(&self) -> usize {
        self.exchanges.borrow().len()
    }

    /// Total token usage across all calls.
    pub fn total_usage(&self) -> Usage {
        let exchanges = self.exchanges.borrow();
        Usage {
            prompt_tokens: exchanges.iter().map(|e| e.usage.prompt_tokens).sum(),
            completion_tokens: exchanges.iter().map(|e| e.usage.completion_tokens).sum(),
        }
    }

    /// Unwraps the inner model.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: ChatModel> ChatModel for Transcript<M> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
        let response = self.inner.complete(request)?;
        self.exchanges.borrow_mut().push(Exchange {
            prompt: request.user_text(),
            response: response.content.clone(),
            usage: response.usage,
        });
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::ScriptedLlm;

    #[test]
    fn records_exchanges_and_usage() {
        let t = Transcript::new(ScriptedLlm::new(["resp one", "response two longer"]));
        t.complete(&ChatRequest::simple("first prompt")).unwrap();
        t.complete(&ChatRequest::simple("second")).unwrap();
        assert_eq!(t.call_count(), 2);
        let ex = t.exchanges();
        assert_eq!(ex[0].prompt, "first prompt");
        assert_eq!(ex[0].response, "resp one");
        assert_eq!(t.total_usage().prompt_tokens, 3);
        assert_eq!(t.total_usage().completion_tokens, 5);
    }

    #[test]
    fn failures_not_recorded() {
        let t = Transcript::new(ScriptedLlm::new(Vec::<String>::new()));
        assert!(t.complete(&ChatRequest::simple("x")).is_err());
        assert_eq!(t.call_count(), 0);
    }

    #[test]
    fn passthrough_name() {
        let t = Transcript::new(ScriptedLlm::new(["a"]));
        assert_eq!(t.model_name(), "scripted");
    }
}
