//! `CachedLlm` — a completion cache keyed on prompt hash.
//!
//! The paper's hosted deployment re-cleans the same tables as users iterate;
//! every re-clean replays the same prompts at temperature 0, so answers are
//! safe to memoise. The cache stores successful responses only (failures
//! stay retryable), counts hits and misses, and partitions batch requests so
//! the inner model sees a single batch of just the misses.

use crate::chat::{ChatModel, ChatRequest, ChatResponse};
use crate::error::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Memoises an inner model's completions, keyed on a 64-bit hash of the
/// full request (roles, contents, temperature).
///
/// Thread-safe: the map lives behind a `Mutex` and the counters are atomic,
/// so concurrent detection workers share one cache. Two workers racing on
/// the same cold prompt may both miss and complete; both store the same
/// deterministic answer, so output never depends on the race.
pub struct CachedLlm<M> {
    inner: M,
    responses: Mutex<HashMap<u64, ChatResponse>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<M: ChatModel> CachedLlm<M> {
    pub fn new(inner: M) -> Self {
        CachedLlm {
            inner,
            responses: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Completions served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Completions forwarded to the inner model so far (including failures).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.responses.lock().expect("cache lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached response (counters keep running).
    pub fn clear(&self) {
        self.responses.lock().expect("cache lock").clear();
    }

    /// The wrapped model (e.g. to read a transcript through the cache).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Cache key: [`ChatRequest::fingerprint`] — the same identity the
    /// coalescing dispatcher single-flights on, so a cache hit and an
    /// in-flight merge always agree on what "the same request" means.
    fn key(request: &ChatRequest) -> u64 {
        request.fingerprint()
    }

    fn lookup(&self, key: u64) -> Option<ChatResponse> {
        self.responses.lock().expect("cache lock").get(&key).cloned()
    }

    fn store(&self, key: u64, response: &ChatResponse) {
        self.responses.lock().expect("cache lock").insert(key, response.clone());
    }
}

impl<M: ChatModel> ChatModel for CachedLlm<M> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
        let key = Self::key(request);
        if let Some(cached) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let response = self.inner.complete(request)?;
        self.store(key, &response);
        Ok(response)
    }

    fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
        // Serve hits up front, then hand the inner model one batch holding
        // only the misses, in request order.
        let keys: Vec<u64> = requests.iter().map(Self::key).collect();
        let mut out: Vec<Option<Result<ChatResponse>>> = keys
            .iter()
            .map(|&k| {
                self.lookup(k).map(|cached| {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Ok(cached)
                })
            })
            .collect();
        let miss_indices: Vec<usize> =
            out.iter().enumerate().filter(|(_, r)| r.is_none()).map(|(i, _)| i).collect();
        if !miss_indices.is_empty() {
            self.misses.fetch_add(miss_indices.len(), Ordering::Relaxed);
            let miss_requests: Vec<ChatRequest> =
                miss_indices.iter().map(|&i| requests[i].clone()).collect();
            let responses = self.inner.complete_batch(&miss_requests);
            for (&i, response) in miss_indices.iter().zip(responses) {
                if let Ok(response) = &response {
                    self.store(keys[i], response);
                }
                out[i] = Some(response);
            }
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{FailingLlm, ScriptedLlm};
    use crate::error::LlmError;

    #[test]
    fn repeat_prompts_hit_the_cache() {
        let llm = CachedLlm::new(ScriptedLlm::new(["only answer"]));
        let request = ChatRequest::simple("same prompt");
        let first = llm.complete(&request).unwrap();
        let second = llm.complete(&request).unwrap();
        assert_eq!(first, second);
        assert_eq!((llm.hits(), llm.misses()), (1, 1));
        // The script held one response; without the cache the second call
        // would have failed with Empty.
        assert_eq!(llm.inner().prompts_seen().len(), 1);
    }

    #[test]
    fn distinct_prompts_miss() {
        let llm = CachedLlm::new(ScriptedLlm::new(["a", "b"]));
        llm.complete(&ChatRequest::simple("p1")).unwrap();
        llm.complete(&ChatRequest::simple("p2")).unwrap();
        assert_eq!((llm.hits(), llm.misses()), (0, 2));
        assert_eq!(llm.len(), 2);
    }

    #[test]
    fn temperature_is_part_of_the_key() {
        let llm = CachedLlm::new(ScriptedLlm::new(["cold", "warm"]));
        let cold = ChatRequest::simple("p");
        let warm = ChatRequest { temperature: 0.7, ..cold.clone() };
        assert_eq!(llm.complete(&cold).unwrap().content, "cold");
        assert_eq!(llm.complete(&warm).unwrap().content, "warm");
        assert_eq!(llm.misses(), 2);
    }

    #[test]
    fn failures_are_not_cached() {
        let llm = CachedLlm::new(FailingLlm);
        let request = ChatRequest::simple("p");
        assert!(llm.complete(&request).is_err());
        assert!(llm.complete(&request).is_err());
        assert_eq!((llm.hits(), llm.misses()), (0, 2));
        assert!(llm.is_empty());
    }

    #[test]
    fn batch_partitions_hits_from_misses() {
        let llm = CachedLlm::new(ScriptedLlm::new(["a1", "a2", "a3"]));
        llm.complete(&ChatRequest::simple("p1")).unwrap();
        let requests = vec![
            ChatRequest::simple("p2"),
            ChatRequest::simple("p1"), // hit
            ChatRequest::simple("p3"),
            ChatRequest::simple("p4"), // script exhausted → Empty, not cached
        ];
        let responses = llm.complete_batch(&requests);
        assert_eq!(responses[0].as_ref().unwrap().content, "a2");
        assert_eq!(responses[1].as_ref().unwrap().content, "a1");
        assert_eq!(responses[2].as_ref().unwrap().content, "a3");
        assert_eq!(responses[3], Err(LlmError::Empty));
        // Only the misses reached the inner model, in order.
        assert_eq!(llm.inner().prompts_seen(), vec!["p1", "p2", "p3", "p4"]);
        assert_eq!((llm.hits(), llm.misses()), (1, 4));
    }

    #[test]
    fn clear_resets_contents_not_counters() {
        let llm = CachedLlm::new(ScriptedLlm::new(["a", "b"]));
        llm.complete(&ChatRequest::simple("p")).unwrap();
        llm.clear();
        assert!(llm.is_empty());
        llm.complete(&ChatRequest::simple("p")).unwrap();
        assert_eq!((llm.hits(), llm.misses()), (0, 2));
    }
}
