//! [`CachedLlm`] — a bounded completion cache keyed on prompt hash.
//!
//! The paper's hosted deployment re-cleans the same tables as users iterate;
//! every re-clean replays the same prompts at temperature 0, so answers are
//! safe to memoise. The cache stores successful responses only (failures
//! stay retryable), counts hits, misses and evictions, and partitions batch
//! requests so the inner model sees a single batch of just the misses.
//!
//! A long-lived process (the `cocoon-server` deployment) sees an unbounded
//! stream of distinct prompts, so the cache can be capped:
//! [`CachedLlm::with_capacity`] keeps at most N entries and evicts the least
//! recently *used* one on overflow — a hit refreshes an entry's recency, so
//! a steady working set survives one-off prompts churning past it.

use crate::chat::{ChatModel, ChatRequest, ChatResponse};
use crate::error::Result;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The LRU bookkeeping behind one mutex: entries carry the recency tick at
/// which they were last touched, and `order` maps ticks back to keys so the
/// least recently used entry is always `order`'s first element.
struct CacheInner {
    /// key → (response, recency tick of the last touch).
    entries: HashMap<u64, (ChatResponse, u64)>,
    /// recency tick → key, oldest first. Ticks are unique (one counter,
    /// bumped under the lock), so this is a faithful LRU order.
    order: BTreeMap<u64, u64>,
    /// The next recency tick to hand out.
    tick: u64,
}

impl CacheInner {
    /// Re-stamps `key` as most recently used.
    fn touch(&mut self, key: u64) {
        if let Some((_, tick)) = self.entries.get_mut(&key) {
            self.order.remove(tick);
            self.tick += 1;
            *tick = self.tick;
            self.order.insert(self.tick, key);
        }
    }
}

/// Memoises an inner model's completions, keyed on a 64-bit hash of the
/// full request (roles, contents, temperature), with an optional LRU bound.
///
/// Thread-safe: the map lives behind a `Mutex` and the counters are atomic,
/// so concurrent detection workers share one cache. Two workers racing on
/// the same cold prompt may both miss and complete; both store the same
/// deterministic answer, so output never depends on the race.
///
/// ```
/// use cocoon_llm::{CachedLlm, ChatModel, ChatRequest, ScriptedLlm};
///
/// // Bound the cache to 256 entries — the shape a long-lived server wants.
/// let llm = CachedLlm::with_capacity(ScriptedLlm::new(["the answer"]), 256);
/// let first = llm.complete(&ChatRequest::simple("prompt")).unwrap();
/// let second = llm.complete(&ChatRequest::simple("prompt")).unwrap();
/// assert_eq!(first, second, "the repeat replays from the cache");
/// assert_eq!((llm.hits(), llm.misses(), llm.evictions()), (1, 1, 0));
/// assert_eq!(llm.capacity(), Some(256));
/// ```
pub struct CachedLlm<M> {
    inner: M,
    responses: Mutex<CacheInner>,
    /// `None` = unbounded (the library default); `Some(n)` = keep at most
    /// `n` entries, evicting the least recently used.
    capacity: Option<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl<M: ChatModel> CachedLlm<M> {
    /// An unbounded cache — fine for one-shot library runs, where the
    /// prompt set is bounded by the table being cleaned.
    pub fn new(inner: M) -> Self {
        Self::build(inner, None)
    }

    /// A cache holding at most `capacity` responses; on overflow the least
    /// recently used entry is evicted (and counted). A capacity of 0 caches
    /// nothing — every completion forwards to the inner model.
    pub fn with_capacity(inner: M, capacity: usize) -> Self {
        Self::build(inner, Some(capacity))
    }

    fn build(inner: M, capacity: Option<usize>) -> Self {
        CachedLlm {
            inner,
            responses: Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Completions served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Completions forwarded to the inner model so far (including failures).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound so far (always 0 when unbounded).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured bound, or `None` for an unbounded cache.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of cached responses; never exceeds [`capacity`](Self::capacity).
    pub fn len(&self) -> usize {
        self.responses.lock().expect("cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached response (counters keep running).
    pub fn clear(&self) {
        let mut inner = self.responses.lock().expect("cache lock");
        inner.entries.clear();
        inner.order.clear();
    }

    /// The wrapped model (e.g. to read a transcript through the cache).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps the cache, returning the inner model.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Cache key: [`ChatRequest::fingerprint`] — the same identity the
    /// coalescing dispatcher single-flights on, so a cache hit and an
    /// in-flight merge always agree on what "the same request" means.
    fn key(request: &ChatRequest) -> u64 {
        request.fingerprint()
    }

    /// Returns the cached response for `key`, refreshing its recency when
    /// a bound makes recency matter — the unbounded cache skips the LRU
    /// bookkeeping entirely on its hot path.
    fn lookup(&self, key: u64) -> Option<ChatResponse> {
        let mut inner = self.responses.lock().expect("cache lock");
        let response = inner.entries.get(&key).map(|(r, _)| r.clone())?;
        if self.capacity.is_some() {
            inner.touch(key);
        }
        Some(response)
    }

    /// Inserts `key → response` as most recently used, evicting the least
    /// recently used entries while over capacity.
    fn store(&self, key: u64, response: &ChatResponse) {
        let Some(cap) = self.capacity else {
            return self.store_unbounded(key, response);
        };
        if cap == 0 {
            return;
        }
        let mut inner = self.responses.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((_, old_tick)) = inner.entries.insert(key, (response.clone(), tick)) {
            // A racer stored the same key first; supersede its order slot.
            inner.order.remove(&old_tick);
        }
        inner.order.insert(tick, key);
        while inner.entries.len() > cap {
            let (_, oldest) = inner.order.pop_first().expect("order tracks entries");
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The unbounded insert: no eviction can ever fire, so the recency
    /// `order` map is left untouched (and stays empty).
    fn store_unbounded(&self, key: u64, response: &ChatResponse) {
        let mut inner = self.responses.lock().expect("cache lock");
        inner.entries.insert(key, (response.clone(), 0));
    }
}

impl<M: ChatModel> ChatModel for CachedLlm<M> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse> {
        let key = Self::key(request);
        if let Some(cached) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let response = self.inner.complete(request)?;
        self.store(key, &response);
        Ok(response)
    }

    fn complete_batch(&self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse>> {
        // Serve hits up front, then hand the inner model one batch holding
        // only the misses, in request order.
        let keys: Vec<u64> = requests.iter().map(Self::key).collect();
        let mut out: Vec<Option<Result<ChatResponse>>> = keys
            .iter()
            .map(|&k| {
                self.lookup(k).map(|cached| {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Ok(cached)
                })
            })
            .collect();
        let miss_indices: Vec<usize> =
            out.iter().enumerate().filter(|(_, r)| r.is_none()).map(|(i, _)| i).collect();
        if !miss_indices.is_empty() {
            self.misses.fetch_add(miss_indices.len(), Ordering::Relaxed);
            let miss_requests: Vec<ChatRequest> =
                miss_indices.iter().map(|&i| requests[i].clone()).collect();
            let responses = self.inner.complete_batch(&miss_requests);
            for (&i, response) in miss_indices.iter().zip(responses) {
                if let Ok(response) = &response {
                    self.store(keys[i], response);
                }
                out[i] = Some(response);
            }
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{FailingLlm, ScriptedLlm};
    use crate::error::LlmError;

    #[test]
    fn repeat_prompts_hit_the_cache() {
        let llm = CachedLlm::new(ScriptedLlm::new(["only answer"]));
        let request = ChatRequest::simple("same prompt");
        let first = llm.complete(&request).unwrap();
        let second = llm.complete(&request).unwrap();
        assert_eq!(first, second);
        assert_eq!((llm.hits(), llm.misses()), (1, 1));
        // The script held one response; without the cache the second call
        // would have failed with Empty.
        assert_eq!(llm.inner().prompts_seen().len(), 1);
    }

    #[test]
    fn distinct_prompts_miss() {
        let llm = CachedLlm::new(ScriptedLlm::new(["a", "b"]));
        llm.complete(&ChatRequest::simple("p1")).unwrap();
        llm.complete(&ChatRequest::simple("p2")).unwrap();
        assert_eq!((llm.hits(), llm.misses()), (0, 2));
        assert_eq!(llm.len(), 2);
    }

    #[test]
    fn temperature_is_part_of_the_key() {
        let llm = CachedLlm::new(ScriptedLlm::new(["cold", "warm"]));
        let cold = ChatRequest::simple("p");
        let warm = ChatRequest { temperature: 0.7, ..cold.clone() };
        assert_eq!(llm.complete(&cold).unwrap().content, "cold");
        assert_eq!(llm.complete(&warm).unwrap().content, "warm");
        assert_eq!(llm.misses(), 2);
    }

    #[test]
    fn failures_are_not_cached() {
        let llm = CachedLlm::new(FailingLlm);
        let request = ChatRequest::simple("p");
        assert!(llm.complete(&request).is_err());
        assert!(llm.complete(&request).is_err());
        assert_eq!((llm.hits(), llm.misses()), (0, 2));
        assert!(llm.is_empty());
    }

    #[test]
    fn batch_partitions_hits_from_misses() {
        let llm = CachedLlm::new(ScriptedLlm::new(["a1", "a2", "a3"]));
        llm.complete(&ChatRequest::simple("p1")).unwrap();
        let requests = vec![
            ChatRequest::simple("p2"),
            ChatRequest::simple("p1"), // hit
            ChatRequest::simple("p3"),
            ChatRequest::simple("p4"), // script exhausted → Empty, not cached
        ];
        let responses = llm.complete_batch(&requests);
        assert_eq!(responses[0].as_ref().unwrap().content, "a2");
        assert_eq!(responses[1].as_ref().unwrap().content, "a1");
        assert_eq!(responses[2].as_ref().unwrap().content, "a3");
        assert_eq!(responses[3], Err(LlmError::Empty));
        // Only the misses reached the inner model, in order.
        assert_eq!(llm.inner().prompts_seen(), vec!["p1", "p2", "p3", "p4"]);
        assert_eq!((llm.hits(), llm.misses()), (1, 4));
    }

    #[test]
    fn clear_resets_contents_not_counters() {
        let llm = CachedLlm::new(ScriptedLlm::new(["a", "b"]));
        llm.complete(&ChatRequest::simple("p")).unwrap();
        llm.clear();
        assert!(llm.is_empty());
        llm.complete(&ChatRequest::simple("p")).unwrap();
        assert_eq!((llm.hits(), llm.misses()), (0, 2));
    }

    #[test]
    fn unbounded_cache_reports_no_capacity_and_never_evicts() {
        let llm = CachedLlm::new(ScriptedLlm::new((0..100).map(|i| format!("a{i}"))));
        for i in 0..100 {
            llm.complete(&ChatRequest::simple(format!("p{i}"))).unwrap();
        }
        assert_eq!(llm.capacity(), None);
        assert_eq!(llm.len(), 100);
        assert_eq!(llm.evictions(), 0);
    }

    #[test]
    fn capacity_bounds_the_entry_count() {
        let llm = CachedLlm::with_capacity(ScriptedLlm::new((0..10).map(|i| format!("a{i}"))), 3);
        for i in 0..10 {
            llm.complete(&ChatRequest::simple(format!("p{i}"))).unwrap();
            assert!(llm.len() <= 3, "after insert {i}: len {} > capacity 3", llm.len());
        }
        assert_eq!(llm.len(), 3);
        assert_eq!(llm.evictions(), 7, "10 inserts into 3 slots evict 7");
        assert_eq!(llm.capacity(), Some(3));
    }

    #[test]
    fn eviction_follows_least_recently_used_order() {
        let llm = CachedLlm::with_capacity(ScriptedLlm::new(["a", "b", "c", "d"]), 3);
        llm.complete(&ChatRequest::simple("p0")).unwrap();
        llm.complete(&ChatRequest::simple("p1")).unwrap();
        llm.complete(&ChatRequest::simple("p2")).unwrap();
        // Touch p0 so p1 becomes the least recently used…
        assert_eq!(llm.complete(&ChatRequest::simple("p0")).unwrap().content, "a");
        // …then overflow: p1 must be the entry that goes.
        llm.complete(&ChatRequest::simple("p3")).unwrap();
        assert_eq!(llm.evictions(), 1);
        let hits_before = llm.hits();
        // p0 and p2 still replay from the cache; p1 is gone (its retry
        // misses, and the exhausted script fails it — proof of eviction).
        assert_eq!(llm.complete(&ChatRequest::simple("p0")).unwrap().content, "a");
        assert_eq!(llm.complete(&ChatRequest::simple("p2")).unwrap().content, "c");
        assert_eq!(llm.complete(&ChatRequest::simple("p3")).unwrap().content, "d");
        assert_eq!(llm.hits(), hits_before + 3);
        assert_eq!(llm.complete(&ChatRequest::simple("p1")), Err(LlmError::Empty));
    }

    #[test]
    fn batch_hits_refresh_recency() {
        let llm = CachedLlm::with_capacity(ScriptedLlm::new(["a", "b", "c"]), 2);
        llm.complete(&ChatRequest::simple("p0")).unwrap();
        llm.complete(&ChatRequest::simple("p1")).unwrap();
        // A batch hit on p0 must refresh it, making p1 the LRU victim.
        let responses = llm.complete_batch(&[ChatRequest::simple("p0")]);
        assert_eq!(responses[0].as_ref().unwrap().content, "a");
        llm.complete(&ChatRequest::simple("p2")).unwrap();
        assert_eq!(llm.complete(&ChatRequest::simple("p0")).unwrap().content, "a");
        assert_eq!(llm.complete(&ChatRequest::simple("p1")), Err(LlmError::Empty));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let llm = CachedLlm::with_capacity(ScriptedLlm::new(["a", "b"]), 0);
        let request = ChatRequest::simple("p");
        assert_eq!(llm.complete(&request).unwrap().content, "a");
        assert_eq!(llm.complete(&request).unwrap().content, "b");
        assert_eq!((llm.hits(), llm.misses(), llm.len()), (0, 2, 0));
    }

    #[test]
    fn concurrent_hammer_never_exceeds_capacity() {
        let llm = CachedLlm::with_capacity(ScriptedLlm::new((0..64).map(|i| format!("a{i}"))), 4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let llm = &llm;
                s.spawn(move || {
                    for i in 0..8 {
                        let _ = llm.complete(&ChatRequest::simple(format!("t{t}-p{i}")));
                        assert!(llm.len() <= 4, "len {} over capacity", llm.len());
                    }
                });
            }
        });
        assert!(llm.len() <= 4);
        assert!(llm.evictions() > 0);
    }
}
