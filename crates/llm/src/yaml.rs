//! A YAML subset parser for the Figure 3 cleaning-response format.
//!
//! The paper's semantic-cleaning prompt demands a fenced `yml` block of the
//! shape:
//!
//! ```text
//! explanation: >
//!   The problem is ... The correct values are ...
//! mapping:
//!   old_value: new_value
//! ```
//!
//! This module parses exactly that shape: top-level scalar keys, folded
//! block scalars (`>` / `|`), and one level of nested `key: value` mappings
//! with single/double-quoted or bare scalars. It is not a general YAML
//! implementation and does not try to be.

use crate::error::{LlmError, Result};
use crate::json::fenced_block;
use std::collections::BTreeMap;

/// A parsed YAML-subset document: top-level key → value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct YamlDoc {
    scalars: BTreeMap<String, String>,
    mappings: BTreeMap<String, Vec<(String, String)>>,
}

impl YamlDoc {
    /// Top-level scalar value (including folded block scalars).
    pub fn scalar(&self, key: &str) -> Option<&str> {
        self.scalars.get(key).map(String::as_str)
    }

    /// Nested mapping under `key`, in document order.
    pub fn mapping(&self, key: &str) -> Option<&[(String, String)]> {
        self.mappings.get(key).map(Vec::as_slice)
    }
}

/// Parses a YAML-subset document.
pub fn parse(input: &str) -> Result<YamlDoc> {
    let mut doc = YamlDoc::default();
    let lines: Vec<&str> = input.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let line = lines[i];
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            i += 1;
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(err(i, "unexpected indentation at top level"));
        }
        let (key, rest) = split_key(line, i)?;
        let rest = rest.trim();
        if rest == ">" || rest == "|" {
            // Block scalar: consume following more-indented lines.
            let folded = rest == ">";
            let mut parts: Vec<String> = Vec::new();
            i += 1;
            while i < lines.len() {
                let l = lines[i];
                if l.trim().is_empty() {
                    parts.push(String::new());
                    i += 1;
                    continue;
                }
                if !l.starts_with(' ') && !l.starts_with('\t') {
                    break;
                }
                parts.push(l.trim().to_string());
                i += 1;
            }
            while parts.last().is_some_and(String::is_empty) {
                parts.pop();
            }
            let text = parts.join(if folded { " " } else { "\n" });
            doc.scalars.insert(key, text.trim().to_string());
            continue;
        }
        if rest.is_empty() {
            // Nested mapping: consume indented key: value lines.
            let mut entries: Vec<(String, String)> = Vec::new();
            i += 1;
            while i < lines.len() {
                let l = lines[i];
                if l.trim().is_empty() {
                    i += 1;
                    continue;
                }
                if !l.starts_with(' ') && !l.starts_with('\t') {
                    break;
                }
                let trimmed = l.trim();
                if trimmed.starts_with('#') {
                    i += 1;
                    continue;
                }
                let (k, v) = split_key(trimmed, i)?;
                entries.push((k, unquote(v.trim())));
                i += 1;
            }
            doc.mappings.insert(key, entries);
            continue;
        }
        doc.scalars.insert(key, unquote(rest));
        i += 1;
    }
    Ok(doc)
}

/// Extracts and parses a YAML document from a response, preferring a
/// ```yml / ```yaml fence and falling back to the whole text.
pub fn extract(text: &str) -> Result<YamlDoc> {
    if let Some(inner) = fenced_block(text, &["yml", "yaml", ""]) {
        return parse(inner);
    }
    parse(text)
}

fn err(line: usize, message: &str) -> LlmError {
    LlmError::Malformed { expected: "yaml", detail: format!("{message} (line {})", line + 1) }
}

/// Splits `key: rest`, honouring quoted keys that may contain colons.
fn split_key(line: &str, lineno: usize) -> Result<(String, &str)> {
    let line = line.trim_start();
    if let Some(stripped) = line.strip_prefix('"') {
        // double-quoted key
        let mut out = String::new();
        let mut chars = stripped.char_indices();
        while let Some((idx, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        out.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                }
                '"' => {
                    let rest = &stripped[idx + 1..];
                    let rest = rest
                        .trim_start()
                        .strip_prefix(':')
                        .ok_or_else(|| err(lineno, "expected ':' after quoted key"))?;
                    return Ok((out, rest));
                }
                other => out.push(other),
            }
        }
        Err(err(lineno, "unterminated quoted key"))
    } else if let Some(stripped) = line.strip_prefix('\'') {
        // Single-quoted key; '' escapes a literal quote.
        let bytes: Vec<char> = stripped.chars().collect();
        let mut key = String::new();
        let mut i = 0usize;
        let mut closed = None;
        while i < bytes.len() {
            if bytes[i] == '\'' {
                if bytes.get(i + 1) == Some(&'\'') {
                    key.push('\'');
                    i += 2;
                    continue;
                }
                closed = Some(i);
                break;
            }
            key.push(bytes[i]);
            i += 1;
        }
        let end = closed.ok_or_else(|| err(lineno, "unterminated quoted key"))?;
        let rest: String = bytes[end + 1..].iter().collect();
        let rest_trimmed = rest.trim_start();
        if !rest_trimmed.starts_with(':') {
            return Err(err(lineno, "expected ':' after quoted key"));
        }
        // Find the byte offset of ':' in the original line to return a slice.
        let colon_in_line = line
            .char_indices()
            .skip(1) // opening quote
            .skip(end + 1)
            .find(|(_, c)| *c == ':')
            .map(|(idx, _)| idx)
            .ok_or_else(|| err(lineno, "expected ':' after quoted key"))?;
        Ok((key, &line[colon_in_line + 1..]))
    } else {
        let colon = line.find(':').ok_or_else(|| err(lineno, "expected 'key: value'"))?;
        Ok((line[..colon].trim().to_string(), &line[colon + 1..]))
    }
}

/// Removes surrounding quotes from a scalar, unescaping the basics.
fn unquote(s: &str) -> String {
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => out.push(other),
                    None => {}
                }
            } else {
                out.push(c);
            }
        }
        out
    } else if s.len() >= 2 && s.starts_with('\'') && s.ends_with('\'') {
        s[1..s.len() - 1].replace("''", "'")
    } else {
        s.to_string()
    }
}

/// Emits the Figure 3 response shape (explanation + mapping), quoting keys
/// and values so that any cell content round-trips.
pub fn emit_cleaning_response(explanation: &str, mapping: &[(String, String)]) -> String {
    emit_cleaning_response_scored(explanation, None, mapping)
}

/// [`emit_cleaning_response`] plus an optional `confidence:` scalar, the
/// model's 0–1 self-report that [`crate::responses::parse_cleaning_map`]
/// surfaces to the threshold policy.
pub fn emit_cleaning_response_scored(
    explanation: &str,
    confidence: Option<f64>,
    mapping: &[(String, String)],
) -> String {
    let mut out = String::from("```yml\nexplanation: >\n");
    for line in explanation.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    if let Some(c) = confidence {
        out.push_str(&format!("confidence: {c}\n"));
    }
    out.push_str("mapping:\n");
    for (old, new) in mapping {
        out.push_str(&format!("  {}: {}\n", quote(old), quote(new)));
    }
    out.push_str("```\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure3_shape() {
        let text = "explanation: >\n  The problem is mixed language codes.\n  The correct values are ISO codes.\nmapping:\n  English: eng\n  French: fre\n";
        let doc = parse(text).unwrap();
        assert_eq!(
            doc.scalar("explanation").unwrap(),
            "The problem is mixed language codes. The correct values are ISO codes."
        );
        assert_eq!(
            doc.mapping("mapping").unwrap(),
            &[
                ("English".to_string(), "eng".to_string()),
                ("French".to_string(), "fre".to_string())
            ]
        );
    }

    #[test]
    fn quoted_keys_with_colons() {
        let text = "mapping:\n  \"10:30 p.m.\": \"22:30\"\n  'it''s': fine\n";
        let doc = parse(text).unwrap();
        let m = doc.mapping("mapping").unwrap();
        assert_eq!(m[0], ("10:30 p.m.".to_string(), "22:30".to_string()));
        assert_eq!(m[1], ("it's".to_string(), "fine".to_string()));
    }

    #[test]
    fn empty_values_and_comments() {
        let text = "# header\nmapping:\n  # note\n  bad: \"\"\nstatus: ok\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.mapping("mapping").unwrap()[0].1, "");
        assert_eq!(doc.scalar("status").unwrap(), "ok");
    }

    #[test]
    fn literal_block_preserves_newlines() {
        let text = "note: |\n  line1\n  line2\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.scalar("note").unwrap(), "line1\nline2");
    }

    #[test]
    fn extract_from_fence() {
        let text = "Here you go:\n```yml\nmapping:\n  a: b\n```\n";
        let doc = extract(text).unwrap();
        assert_eq!(doc.mapping("mapping").unwrap()[0], ("a".to_string(), "b".to_string()));
    }

    #[test]
    fn scored_emit_carries_confidence_scalar() {
        let text = emit_cleaning_response_scored("Why.", Some(0.65), &[]);
        let doc = extract(&text).unwrap();
        assert_eq!(doc.scalar("confidence").unwrap(), "0.65");
        // The unscored emitter stays byte-compatible: no confidence line.
        assert!(!emit_cleaning_response("Why.", &[]).contains("confidence"));
    }

    #[test]
    fn round_trip_emit_parse() {
        let mapping = vec![
            ("English".to_string(), "eng".to_string()),
            ("has: colon".to_string(), "x\"y".to_string()),
            ("meaningless".to_string(), String::new()),
        ];
        let text = emit_cleaning_response("Two problems.\nSecond line.", &mapping);
        let doc = extract(&text).unwrap();
        assert_eq!(doc.mapping("mapping").unwrap(), mapping.as_slice());
        assert!(doc.scalar("explanation").unwrap().contains("Two problems."));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("  indented: top").is_err());
        assert!(parse("no colon here").is_err());
        assert!(parse("\"unterminated: x").is_err());
    }
}
