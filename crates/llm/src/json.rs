//! Minimal JSON: value model, parser, emitter, and fence extraction.
//!
//! Cocoon's detection prompts ask the model to "respond in JSON" inside a
//! code fence (Figure 2). This module parses those responses — including
//! the fence-wrapped and slightly-sloppy variants real models produce — and
//! emits the JSON context blocks our prompts embed.

use crate::error::{LlmError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order via `BTreeMap` — fine for
/// our payloads, which never rely on duplicate or ordered keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Number(f64),
    /// A string literal.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; keys sorted by `BTreeMap`.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }

    /// Builds an object from pairs.
    pub fn object<I: IntoIterator<Item = (String, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => f.write_str(&escape(s)),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json> {
    let chars: Vec<char> = input.chars().collect();
    let mut p = JsonParser { chars, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

/// Extracts and parses the first JSON object/array found in `text`,
/// tolerating markdown fences and surrounding prose — the robustness layer
/// every real LLM client needs.
pub fn extract(text: &str) -> Result<Json> {
    // Prefer fenced blocks.
    if let Some(inner) = fenced_block(text, &["json", ""]) {
        if let Ok(v) = parse(inner.trim()) {
            return Ok(v);
        }
    }
    // Otherwise scan for the first balanced {...} or [...].
    let chars: Vec<char> = text.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '{' || c == '[' {
            let mut p = JsonParser { chars: chars.clone(), pos: i };
            if let Ok(v) = p.value() {
                return Ok(v);
            }
        }
    }
    Err(LlmError::Malformed { expected: "json", detail: preview(text) })
}

/// Returns the body of the first ``` fence whose info string matches one of
/// `langs` (empty string = bare fence).
pub fn fenced_block<'a>(text: &'a str, langs: &[&str]) -> Option<&'a str> {
    let mut search_from = 0usize;
    while let Some(start) = text[search_from..].find("```") {
        let start = search_from + start + 3;
        let line_end = text[start..].find('\n').map(|i| start + i)?;
        let info = text[start..line_end].trim();
        let body_start = line_end + 1;
        let end = text[body_start..].find("```").map(|i| body_start + i)?;
        if langs.iter().any(|l| info.eq_ignore_ascii_case(l)) {
            return Some(&text[body_start..end]);
        }
        search_from = end + 3;
    }
    None
}

fn preview(text: &str) -> String {
    let trimmed = text.trim();
    let mut out: String = trimmed.chars().take(80).collect();
    if trimmed.chars().count() > 80 {
        out.push('…');
    }
    out
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn err(&self, message: &str) -> LlmError {
        LlmError::Malformed { expected: "json", detail: format!("{message} at {}", self.pos) }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::String(self.string()?)),
            Some('t') => self.keyword("true", Json::Bool(true)),
            Some('f') => self.keyword("false", Json::Bool(false)),
            Some('n') => self.keyword("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        for expected in word.chars() {
            if self.peek() != Some(expected) {
                return Err(self.err("bad keyword"));
            }
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Number).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String> {
        debug_assert_eq!(self.peek(), Some('"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let hex: String =
                                self.chars.iter().skip(self.pos + 1).take(4).collect();
                            if hex.len() != 4 {
                                return Err(self.err("bad \\u escape"));
                            }
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.pos += 1; // '{'
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some('"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                    // tolerate trailing comma (models emit them)
                    self.skip_ws();
                    if self.peek() == Some('}') {
                        self.pos += 1;
                        return Ok(Json::Object(members));
                    }
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            let value = self.value()?;
            items.push(value);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(']') {
                        self.pos += 1;
                        return Ok(Json::Array(items));
                    }
                }
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5").unwrap(), Json::Number(-2.5));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::String("hi\n".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Json::Null);
    }

    #[test]
    fn tolerates_trailing_commas() {
        assert!(parse(r#"{"a": 1,}"#).is_ok());
        assert!(parse(r#"[1, 2,]"#).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::String("é".into()));
    }

    #[test]
    fn display_round_trips() {
        let v = parse(r#"{"name": "o\"brien", "n": 3, "ok": true, "xs": [1.5, null]}"#).unwrap();
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn extract_from_fence() {
        let text =
            "Sure! Here's the result:\n```json\n{\"Unusualness\": true}\n```\nHope that helps.";
        let v = extract(text).unwrap();
        assert_eq!(v.get("Unusualness").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn extract_from_bare_fence_and_prose() {
        let text = "```\n{\"a\": 1}\n```";
        assert!(extract(text).is_ok());
        let text = "The answer is {\"a\": [1,2,3]} as requested.";
        assert_eq!(extract(text).unwrap().get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn extract_failure() {
        assert!(extract("no json here at all").is_err());
    }

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
