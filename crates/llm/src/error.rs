//! LLM substrate errors.

use std::fmt;

/// Errors from chat completion or response parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The model endpoint failed (simulated network/API failure).
    Completion(String),
    /// The response did not contain the expected payload (e.g. no JSON
    /// fence, malformed JSON/YAML).
    Malformed {
        /// What the parser was looking for.
        expected: &'static str,
        /// The offending response text.
        detail: String,
    },
    /// The model refused or returned an empty response.
    Empty,
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::Completion(msg) => write!(f, "completion failed: {msg}"),
            LlmError::Malformed { expected, detail } => {
                write!(f, "malformed response (expected {expected}): {detail}")
            }
            LlmError::Empty => write!(f, "empty response"),
        }
    }
}

impl std::error::Error for LlmError {}

/// Result alias for the LLM substrate.
pub type Result<T> = std::result::Result<T, LlmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(LlmError::Empty.to_string().contains("empty"));
        let e = LlmError::Malformed { expected: "json", detail: "eof".into() };
        assert!(e.to_string().contains("json"));
    }
}
