//! # cocoon-llm
//!
//! LLM-client substrate for the Cocoon reproduction.
//!
//! The original system talks to hosted models ("We support LLM APIs from
//! Anthropic, Azure, Bedrock, VertexAI, and OpenAI", §2.2). This crate
//! models that boundary:
//!
//! * [`chat`] — the provider-agnostic, thread-safe [`ChatModel`] trait
//!   (single and batched completion) plus scripted and failing test doubles,
//! * [`cache`] — [`CachedLlm`], a prompt-hash-keyed completion cache with
//!   hit/miss accounting for repeat cleans,
//! * [`dispatch`] — [`CoalescingDispatcher`], the request-shaping layer for
//!   shared backends: single-flight merging of concurrent identical
//!   prompts, batch windows over distinct ones, token-bucket rate limiting,
//! * [`prompts`] — the prompt templates for all eight issue types, with the
//!   string-outlier prompts reproducing the paper's Figures 2–3 verbatim,
//! * [`json`] / [`yaml`] — from-scratch wire-format parsers tolerant of the
//!   fences and sloppiness real models produce,
//! * [`responses`] — typed response parsing for every step,
//! * [`sim`] — [`SimLlm`], the deterministic semantic oracle that stands in
//!   for Claude 3.5 offline (see DESIGN.md for the substitution argument),
//! * [`transcript`] — a recording wrapper for HIL reports and token
//!   accounting.

#![warn(missing_docs)]

pub mod cache;
pub mod chat;
pub mod dispatch;
pub mod error;
pub mod json;
pub mod prompts;
pub mod responses;
pub mod sim;
pub mod transcript;
pub mod yaml;

pub use cache::CachedLlm;
pub use chat::{
    ChatModel, ChatRequest, ChatResponse, FailingLlm, Message, Role, ScriptedLlm, Usage,
};
pub use dispatch::{
    BatchEvent, CoalescingDispatcher, DispatchObserver, DispatcherConfig, DispatcherStats,
    RateLimit,
};
pub use error::{LlmError, Result};
pub use json::Json;
pub use responses::{
    parse_cleaning_map, parse_detect_verdict, parse_dmv_verdict, parse_dup_verdict,
    parse_fd_verdict, parse_pattern_plan, parse_range_verdict, parse_type_verdict,
    parse_unique_verdict, CleaningMap, DetectVerdict, DmvVerdict, DupVerdict, FdVerdict,
    PatternPlan, RangeVerdict, TypeVerdict, UniqueVerdict,
};
pub use sim::{analyze_string_values, fd_semantically_meaningful, SimLlm, StringAnalysis};
pub use transcript::{Exchange, Transcript};
