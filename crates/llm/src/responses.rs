//! Typed parsing of model responses.
//!
//! Every pipeline step's response format is defined here next to a parser
//! that tolerates the usual LLM sloppiness (fences, prose around the
//! payload) but fails loudly on genuinely malformed output, letting the
//! pipeline degrade to statistical-only behaviour.

use crate::error::{LlmError, Result};
use crate::json::{extract, Json};
use crate::yaml;

/// The optional 0–1 self-reported `"Confidence"` field every response
/// format may carry. Absent or non-numeric values parse as `None` (legacy
/// completions keep parsing); numeric values are clamped to \[0,1\].
fn confidence_of(v: &Json) -> Option<f64> {
    v.get("Confidence").and_then(Json::as_f64).map(|c| c.clamp(0.0, 1.0))
}

/// Figure 2 verdict for detection prompts.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectVerdict {
    /// The model's reasoning text, quoted in reports.
    pub reasoning: String,
    /// Whether the values were flagged as unusual.
    pub unusual: bool,
    /// One-line summary of the finding.
    pub summary: String,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses `{"Reasoning": …, "Unusualness": …, "Summary": …}`.
pub fn parse_detect_verdict(text: &str) -> Result<DetectVerdict> {
    let v = extract(text)?;
    let unusual = v
        .get("Unusualness")
        .and_then(Json::as_bool)
        .ok_or(LlmError::Malformed { expected: "Unusualness bool", detail: text.into() })?;
    Ok(DetectVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        unusual,
        summary: v.get("Summary").and_then(Json::as_str).unwrap_or("").to_string(),
        confidence: confidence_of(&v),
    })
}

/// Figure 3 cleaning map.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningMap {
    /// The model's explanation of the mapping.
    pub explanation: String,
    /// old value → new value ("" = meaningless, maps to NULL downstream).
    pub mapping: Vec<(String, String)>,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the YAML cleaning response.
pub fn parse_cleaning_map(text: &str) -> Result<CleaningMap> {
    let doc = yaml::extract(text)?;
    let mapping = doc
        .mapping("mapping")
        .ok_or(LlmError::Malformed { expected: "mapping block", detail: text.into() })?
        .to_vec();
    let confidence = doc
        .scalar("confidence")
        .and_then(|c| c.trim().parse::<f64>().ok())
        .map(|c| c.clamp(0.0, 1.0));
    Ok(CleaningMap {
        explanation: doc.scalar("explanation").unwrap_or("").to_string(),
        mapping,
        confidence,
    })
}

/// Pattern-review plan (§2.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternPlan {
    /// The model's reasoning text.
    pub reasoning: String,
    /// Meaningful patterns covering the column.
    pub patterns: Vec<String>,
    /// Whether the column mixes incompatible formats.
    pub inconsistent: bool,
    /// (pattern, replacement) regex transformations to standardise.
    pub transforms: Vec<(String, String)>,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the pattern-review JSON.
pub fn parse_pattern_plan(text: &str) -> Result<PatternPlan> {
    let v = extract(text)?;
    let patterns = v
        .get("Patterns")
        .and_then(Json::as_array)
        .map(|a| a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    let transforms = v
        .get("Transforms")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|t| {
                    Some((
                        t.get("pattern")?.as_str()?.to_string(),
                        t.get("replacement")?.as_str()?.to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(PatternPlan {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        patterns,
        inconsistent: v.get("Inconsistent").and_then(Json::as_bool).unwrap_or(false),
        transforms,
        confidence: confidence_of(&v),
    })
}

/// DMV detection verdict (§2.1.3).
#[derive(Debug, Clone, PartialEq)]
pub struct DmvVerdict {
    /// The model's reasoning text.
    pub reasoning: String,
    /// Tokens judged to be disguised missing values.
    pub tokens: Vec<String>,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the DMV JSON.
pub fn parse_dmv_verdict(text: &str) -> Result<DmvVerdict> {
    let v = extract(text)?;
    let tokens = v
        .get("DisguisedMissing")
        .and_then(Json::as_array)
        .ok_or(LlmError::Malformed { expected: "DisguisedMissing array", detail: text.into() })?
        .iter()
        .filter_map(|x| x.as_str().map(str::to_string))
        .collect();
    Ok(DmvVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        tokens,
        confidence: confidence_of(&v),
    })
}

/// Column-type suggestion (§2.1.4).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeVerdict {
    /// The model's reasoning text.
    pub reasoning: String,
    /// SQL type name (BOOLEAN, BIGINT, DOUBLE, DATE, TIME, VARCHAR).
    pub type_name: String,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the column-type JSON.
pub fn parse_type_verdict(text: &str) -> Result<TypeVerdict> {
    let v = extract(text)?;
    let type_name = v
        .get("Type")
        .and_then(Json::as_str)
        .ok_or(LlmError::Malformed { expected: "Type string", detail: text.into() })?
        .to_string();
    Ok(TypeVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        type_name,
        confidence: confidence_of(&v),
    })
}

/// Numeric acceptable-range verdict (§2.1.5).
#[derive(Debug, Clone, PartialEq)]
pub struct RangeVerdict {
    /// The model's reasoning text.
    pub reasoning: String,
    /// Lower bound of the acceptable range (`None` = unbounded).
    pub low: Option<f64>,
    /// Upper bound of the acceptable range (`None` = unbounded).
    pub high: Option<f64>,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the numeric-range JSON.
pub fn parse_range_verdict(text: &str) -> Result<RangeVerdict> {
    let v = extract(text)?;
    Ok(RangeVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        low: v.get("Low").and_then(Json::as_f64),
        high: v.get("High").and_then(Json::as_f64),
        confidence: confidence_of(&v),
    })
}

/// FD meaningfulness verdict (§2.1.6).
#[derive(Debug, Clone, PartialEq)]
pub struct FdVerdict {
    /// The model's reasoning text.
    pub reasoning: String,
    /// Whether the dependency is semantically meaningful.
    pub meaningful: bool,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the FD-review JSON.
pub fn parse_fd_verdict(text: &str) -> Result<FdVerdict> {
    let v = extract(text)?;
    let meaningful = v
        .get("Meaningful")
        .and_then(Json::as_bool)
        .ok_or(LlmError::Malformed { expected: "Meaningful bool", detail: text.into() })?;
    Ok(FdVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        meaningful,
        confidence: confidence_of(&v),
    })
}

/// Duplication acceptability verdict (§2.1.7).
#[derive(Debug, Clone, PartialEq)]
pub struct DupVerdict {
    /// The model's reasoning text.
    pub reasoning: String,
    /// Whether fully duplicate rows are acceptable here.
    pub acceptable: bool,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the duplication-review JSON.
pub fn parse_dup_verdict(text: &str) -> Result<DupVerdict> {
    let v = extract(text)?;
    let acceptable = v
        .get("Acceptable")
        .and_then(Json::as_bool)
        .ok_or(LlmError::Malformed { expected: "Acceptable bool", detail: text.into() })?;
    Ok(DupVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        acceptable,
        confidence: confidence_of(&v),
    })
}

/// Column-uniqueness verdict (§2.1.8).
#[derive(Debug, Clone, PartialEq)]
pub struct UniqueVerdict {
    /// The model's reasoning text.
    pub reasoning: String,
    /// Whether the column should hold unique values.
    pub should_be_unique: bool,
    /// Column used to prioritise the surviving record, if any.
    pub order_by: Option<String>,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the uniqueness-review JSON.
pub fn parse_unique_verdict(text: &str) -> Result<UniqueVerdict> {
    let v = extract(text)?;
    let should = v
        .get("ShouldBeUnique")
        .and_then(Json::as_bool)
        .ok_or(LlmError::Malformed { expected: "ShouldBeUnique bool", detail: text.into() })?;
    Ok(UniqueVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        should_be_unique: should,
        order_by: v.get("OrderBy").and_then(Json::as_str).map(str::to_string),
        confidence: confidence_of(&v),
    })
}

/// Cross-variant repair-verification verdict (confidence agreement).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairVerdict {
    /// The reviewer variant's reasoning text.
    pub reasoning: String,
    /// Whether the variant endorses the proposed repair.
    pub agree: bool,
    /// Self-reported 0–1 confidence, when stated.
    pub confidence: Option<f64>,
}

/// Parses the repair-verification JSON.
pub fn parse_repair_verdict(text: &str) -> Result<RepairVerdict> {
    let v = extract(text)?;
    let agree = v
        .get("Agree")
        .and_then(Json::as_bool)
        .ok_or(LlmError::Malformed { expected: "Agree bool", detail: text.into() })?;
    Ok(RepairVerdict {
        reasoning: v.get("Reasoning").and_then(Json::as_str).unwrap_or("").to_string(),
        agree,
        confidence: confidence_of(&v),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_verdict_parses_fenced() {
        let text = "```json\n{\"Reasoning\": \"mixed codes\", \"Unusualness\": true, \"Summary\": \"2 values unusual\"}\n```";
        let v = parse_detect_verdict(text).unwrap();
        assert!(v.unusual);
        assert_eq!(v.summary, "2 values unusual");
    }

    #[test]
    fn detect_verdict_requires_unusualness() {
        assert!(parse_detect_verdict("{\"Reasoning\": \"x\"}").is_err());
        assert!(parse_detect_verdict("prose only").is_err());
    }

    #[test]
    fn cleaning_map_parses() {
        let text =
            "```yml\nexplanation: >\n  fix codes\nmapping:\n  English: eng\n  junk: \"\"\n```";
        let m = parse_cleaning_map(text).unwrap();
        assert_eq!(m.mapping.len(), 2);
        assert_eq!(m.mapping[1], ("junk".to_string(), String::new()));
    }

    #[test]
    fn cleaning_map_requires_mapping() {
        assert!(parse_cleaning_map("explanation: x").is_err());
    }

    #[test]
    fn pattern_plan_parses() {
        let text = r#"{"Reasoning": "dates", "Patterns": ["\\d{4}-\\d{2}-\\d{2}"], "Inconsistent": true, "Transforms": [{"pattern": "(\\d{4})-(\\d{2})-(\\d{2})", "replacement": "$2/$3/$1"}]}"#;
        let p = parse_pattern_plan(text).unwrap();
        assert!(p.inconsistent);
        assert_eq!(p.patterns.len(), 1);
        assert_eq!(p.transforms[0].1, "$2/$3/$1");
    }

    #[test]
    fn dmv_and_type_and_range() {
        let v =
            parse_dmv_verdict(r#"{"Reasoning": "r", "DisguisedMissing": ["N/A", "-"]}"#).unwrap();
        assert_eq!(v.tokens, vec!["N/A", "-"]);
        let t = parse_type_verdict(r#"{"Reasoning": "yes/no", "Type": "BOOLEAN"}"#).unwrap();
        assert_eq!(t.type_name, "BOOLEAN");
        let r = parse_range_verdict(r#"{"Reasoning": "scores", "Low": 0, "High": 10}"#).unwrap();
        assert_eq!((r.low, r.high), (Some(0.0), Some(10.0)));
        let r = parse_range_verdict(r#"{"Reasoning": "open", "Low": null, "High": null}"#).unwrap();
        assert_eq!((r.low, r.high), (None, None));
    }

    #[test]
    fn fd_dup_unique_verdicts() {
        assert!(parse_fd_verdict(r#"{"Meaningful": true}"#).unwrap().meaningful);
        assert!(!parse_dup_verdict(r#"{"Acceptable": false}"#).unwrap().acceptable);
        let u = parse_unique_verdict(r#"{"ShouldBeUnique": true, "OrderBy": "updated"}"#).unwrap();
        assert!(u.should_be_unique);
        assert_eq!(u.order_by.as_deref(), Some("updated"));
        let u = parse_unique_verdict(r#"{"ShouldBeUnique": false, "OrderBy": null}"#).unwrap();
        assert_eq!(u.order_by, None);
    }

    #[test]
    fn confidence_is_optional_everywhere() {
        // Legacy completions without the field keep parsing, as None.
        let v = parse_detect_verdict(r#"{"Unusualness": true}"#).unwrap();
        assert_eq!(v.confidence, None);
        // Stated confidences come through, clamped to [0,1].
        let v = parse_detect_verdict(r#"{"Unusualness": true, "Confidence": 0.85}"#).unwrap();
        assert_eq!(v.confidence, Some(0.85));
        let v = parse_detect_verdict(r#"{"Unusualness": true, "Confidence": 7}"#).unwrap();
        assert_eq!(v.confidence, Some(1.0));
        // Non-numeric confidence degrades to None rather than erroring.
        let v = parse_detect_verdict(r#"{"Unusualness": true, "Confidence": "high"}"#).unwrap();
        assert_eq!(v.confidence, None);
        let t = parse_type_verdict(r#"{"Type": "BOOLEAN", "Confidence": 0.95}"#).unwrap();
        assert_eq!(t.confidence, Some(0.95));
        assert_eq!(
            parse_fd_verdict(r#"{"Meaningful": true, "Confidence": 0.6}"#).unwrap().confidence,
            Some(0.6)
        );
    }

    #[test]
    fn cleaning_map_confidence_scalar() {
        let text =
            "```yml\nexplanation: >\n  fix codes\nconfidence: 0.72\nmapping:\n  English: eng\n```";
        let m = parse_cleaning_map(text).unwrap();
        assert_eq!(m.confidence, Some(0.72));
        let legacy = "```yml\nexplanation: >\n  fix\nmapping:\n  a: b\n```";
        assert_eq!(parse_cleaning_map(legacy).unwrap().confidence, None);
    }

    #[test]
    fn repair_verdict_parses() {
        let v = parse_repair_verdict(
            r#"{"Reasoning": "checks out", "Agree": true, "Confidence": 0.9}"#,
        )
        .unwrap();
        assert!(v.agree);
        assert_eq!(v.confidence, Some(0.9));
        let v = parse_repair_verdict(r#"{"Agree": false}"#).unwrap();
        assert!(!v.agree);
        assert!(parse_repair_verdict(r#"{"Reasoning": "no verdict"}"#).is_err());
    }
}
