//! Property tests: JSON/YAML wire formats round-trip arbitrary payloads.

use cocoon_llm::json::{self, Json};
use cocoon_llm::yaml;
use proptest::prelude::*;

fn json_value() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1e9f64..1e9).prop_map(Json::Number),
        "[ -~]{0,10}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Json::Object),
        ]
    })
}

fn mapping_entry() -> impl Strategy<Value = (String, String)> {
    ("[ -~]{0,14}", "[ -~]{0,14}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn json_display_parse_round_trip(value in json_value()) {
        let text = value.to_string();
        let reparsed = json::parse(&text).expect("display output parses");
        // Numbers may lose nothing (we emit full f64); compare directly.
        prop_assert_eq!(reparsed, value);
    }

    #[test]
    fn json_extract_finds_fenced_payload(value in json_value()) {
        prop_assume!(matches!(value, Json::Object(_) | Json::Array(_)));
        let text = format!("Sure, here you go:\n```json\n{value}\n```\ndone.");
        let extracted = json::extract(&text).expect("extracts");
        prop_assert_eq!(extracted, value);
    }

    #[test]
    fn yaml_cleaning_response_round_trips(
        explanation in "[ -~]{0,40}",
        mapping in proptest::collection::vec(mapping_entry(), 0..8),
    ) {
        let text = yaml::emit_cleaning_response(&explanation, &mapping);
        let doc = yaml::extract(&text).expect("parses");
        prop_assert_eq!(doc.mapping("mapping").expect("mapping present"), mapping.as_slice());
    }

    #[test]
    fn json_escape_round_trips(s in "[ -~\\n\\t]{0,24}") {
        let escaped = json::escape(&s);
        let parsed = json::parse(&escaped).expect("escaped string parses");
        prop_assert_eq!(parsed, Json::String(s));
    }
}
