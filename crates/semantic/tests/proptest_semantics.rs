//! Property tests: metric axioms and knowledge-function invariants.

use cocoon_semantic::{
    damerau_levenshtein, parse_duration_minutes, squash_whitespace, suggest_typo_fixes,
};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{0,10}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distance_identity(a in word()) {
        prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
    }

    #[test]
    fn distance_symmetry(a in word(), b in word()) {
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
    }

    #[test]
    fn distance_bounded_by_longer_string(a in word(), b in word()) {
        let d = damerau_levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        // Distance 0 iff equal.
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn single_insertion_is_distance_one(a in word(), c in proptest::char::range('a', 'z'), idx in 0usize..10) {
        let chars: Vec<char> = a.chars().collect();
        let pos = idx.min(chars.len());
        let mut longer = chars.clone();
        longer.insert(pos, c);
        let longer: String = longer.into_iter().collect();
        prop_assert_eq!(damerau_levenshtein(&a, &longer), 1);
    }

    #[test]
    fn typo_fixes_never_touch_dominant_values(
        base in "[a-z]{4,8}",
        rare_suffix in proptest::char::range('a', 'z'),
    ) {
        let rare = format!("{base}{rare_suffix}");
        prop_assume!(rare != base);
        let census = vec![(base.clone(), 50), (rare.clone(), 1)];
        let fixes = suggest_typo_fixes(&census, 3.0);
        for fix in &fixes {
            prop_assert_eq!(&fix.from, &rare);
            prop_assert_eq!(&fix.to, &base);
        }
    }

    #[test]
    fn duration_parse_agrees_with_construction(h in 0u32..10, m in 0u32..60) {
        let text = format!("{h} hr {m} min");
        prop_assert_eq!(parse_duration_minutes(&text), Some((h * 60 + m) as f64));
        let bare = format!("{m} min");
        prop_assert_eq!(parse_duration_minutes(&bare), Some(m as f64));
    }

    #[test]
    fn squash_whitespace_idempotent(s in "[a-z \\t]{0,20}") {
        let once = squash_whitespace(&s);
        prop_assert_eq!(squash_whitespace(&once), once.clone());
        prop_assert!(!once.contains("  "));
    }
}
