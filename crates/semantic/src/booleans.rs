//! Boolean-like value recognition.
//!
//! Appendix B: "for 'EmergencyService' in the hospital dataset, the current
//! values are 'yes' and 'no', which semantically means a boolean." Cocoon
//! casts such columns to BOOLEAN (`"True"`/`"False"` renderings).

/// Tokens meaning TRUE.
pub const TRUE_TOKENS: &[&str] = &["yes", "y", "true", "t", "1"];
/// Tokens meaning FALSE.
pub const FALSE_TOKENS: &[&str] = &["no", "n", "false", "f", "0"];

/// Interprets a boolean-like token (case-insensitive, trimmed).
pub fn parse_boolean_token(value: &str) -> Option<bool> {
    let lowered = value.trim().to_lowercase();
    if TRUE_TOKENS.contains(&lowered.as_str()) {
        return Some(true);
    }
    if FALSE_TOKENS.contains(&lowered.as_str()) {
        return Some(false);
    }
    None
}

/// Decides whether a set of distinct values is semantically boolean:
/// every value parses as a boolean token and both polarities are
/// representable (a column of all `"1"`s is more likely a count).
pub fn values_look_boolean<S: AsRef<str>>(distinct_values: &[S]) -> bool {
    if distinct_values.is_empty() || distinct_values.len() > 4 {
        return false;
    }
    let mut saw_true = false;
    let mut saw_false = false;
    for v in distinct_values {
        match parse_boolean_token(v.as_ref()) {
            Some(true) => saw_true = true,
            Some(false) => saw_false = true,
            None => return false,
        }
    }
    saw_true && saw_false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_parsing() {
        assert_eq!(parse_boolean_token("YES"), Some(true));
        assert_eq!(parse_boolean_token(" no "), Some(false));
        assert_eq!(parse_boolean_token("t"), Some(true));
        assert_eq!(parse_boolean_token("maybe"), None);
    }

    #[test]
    fn emergency_service_case() {
        assert!(values_look_boolean(&["yes", "no"]));
        assert!(values_look_boolean(&["Yes", "No", "YES"]));
    }

    #[test]
    fn single_polarity_not_boolean() {
        assert!(!values_look_boolean(&["1"]));
        assert!(!values_look_boolean(&["yes", "yes"]));
    }

    #[test]
    fn non_boolean_rejected() {
        assert!(!values_look_boolean(&["yes", "no", "maybe"]));
        assert!(!values_look_boolean::<&str>(&[]));
        let many = ["yes", "no", "y", "n", "true"];
        assert!(!values_look_boolean(&many));
    }
}
