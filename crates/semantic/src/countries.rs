//! Country knowledge: names and primary languages.
//!
//! The Movies benchmark's misplacement errors put country values into the
//! language column and vice versa ("the county was incorrectly entered in
//! the city column" class of §3.1). Repairing them takes real-world
//! knowledge of which language pairs with which country — exactly the kind
//! of open-world association the paper credits LLMs with.

/// (country, primary language) pairs. Only countries with a reasonably
/// unambiguous primary language are listed; the reverse lookup
/// ([`country_for_language`]) additionally requires the language to map to
/// a *unique* country (so `English` never guesses between USA/UK).
pub const COUNTRY_LANGUAGES: &[(&str, &str)] = &[
    ("usa", "english"),
    ("uk", "english"),
    ("india", "hindi"),
    ("france", "french"),
    ("italy", "italian"),
    ("japan", "japanese"),
    ("germany", "german"),
    ("china", "chinese"),
    ("spain", "spanish"),
    ("russia", "russian"),
    ("south korea", "korean"),
    ("brazil", "portuguese"),
    ("turkey", "turkish"),
    ("iran", "persian"),
    ("israel", "hebrew"),
    ("sweden", "swedish"),
    ("denmark", "danish"),
    ("norway", "norwegian"),
    ("finland", "finnish"),
    ("greece", "greek"),
    ("poland", "polish"),
    ("netherlands", "dutch"),
    ("thailand", "thai"),
    ("vietnam", "vietnamese"),
    ("indonesia", "indonesian"),
    ("ukraine", "ukrainian"),
    ("hungary", "hungarian"),
    ("romania", "romanian"),
    ("croatia", "croatian"),
    ("serbia", "serbian"),
    ("czech republic", "czech"),
];

/// True when `value` names a country in the table (case-insensitive).
pub fn is_country_token(value: &str) -> bool {
    let lowered = value.trim().to_lowercase();
    COUNTRY_LANGUAGES.iter().any(|(c, _)| *c == lowered)
}

/// The primary language of `country`, lowercase, if known.
pub fn language_for_country(country: &str) -> Option<&'static str> {
    let lowered = country.trim().to_lowercase();
    COUNTRY_LANGUAGES.iter().find(|(c, _)| *c == lowered).map(|(_, l)| *l)
}

/// The unique country whose primary language is `language`, lowercase.
/// Returns `None` when the language is spoken primarily in several listed
/// countries (e.g. English, Spanish) — guessing would be wrong.
pub fn country_for_language(language: &str) -> Option<&'static str> {
    let lowered = language.trim().to_lowercase();
    let mut hits = COUNTRY_LANGUAGES.iter().filter(|(_, l)| *l == lowered);
    let first = hits.next()?;
    if hits.next().is_some() {
        return None;
    }
    Some(first.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        assert!(is_country_token("India"));
        assert!(is_country_token(" france "));
        assert!(!is_country_token("hindi"));
        assert_eq!(language_for_country("India"), Some("hindi"));
        assert_eq!(language_for_country("atlantis"), None);
    }

    #[test]
    fn reverse_lookup_requires_uniqueness() {
        assert_eq!(country_for_language("Hindi"), Some("india"));
        assert_eq!(country_for_language("Japanese"), Some("japan"));
        // English is primary in both USA and UK: refuse to guess.
        assert_eq!(country_for_language("English"), None);
        // Spanish is primary in Spain only in this table.
        assert_eq!(country_for_language("Spanish"), Some("spain"));
        assert_eq!(country_for_language("klingon"), None);
    }

    #[test]
    fn table_is_lowercase() {
        for (c, l) in COUNTRY_LANGUAGES {
            assert_eq!(*c, c.to_lowercase());
            assert_eq!(*l, l.to_lowercase());
        }
    }
}
