//! # cocoon-semantic
//!
//! The world-knowledge substrate behind the simulated LLM.
//!
//! The paper's thesis is that cleaning rules must come from *semantic,
//! real-world knowledge* rather than statistics over the (erroneous) data
//! itself. The original system sources that knowledge from Claude 3.5; this
//! reproduction encodes the same *classes* of generic knowledge as explicit
//! tables and algorithms, so the pipeline's semantic steps are deterministic
//! and auditable:
//!
//! * [`languages`] — language names ↔ ISO 639-2 codes (Example 1),
//! * [`geography`] — US states/abbreviations and a city gazetteer,
//! * [`units`] — `"oz"`/`"ounce"` volumes and `"1 hr. 30 min."` durations,
//! * [`booleans`] — yes/no-style boolean recognition (Appendix B),
//! * [`missing`] — disguised-missing tokens (`"N/A"`, `"-"`, sentinels),
//! * [`typo`] — Damerau–Levenshtein typo detection with frequency asymmetry,
//! * [`normalize`] — casing/whitespace variant grouping,
//! * [`dates`] — textual date families and standardisation.
//!
//! None of this knowledge is dataset ground truth: it is the kind of
//! open-world information a large language model brings to the table.

pub mod booleans;
pub mod countries;
pub mod dates;
pub mod geography;
pub mod languages;
pub mod missing;
pub mod normalize;
pub mod typo;
pub mod units;

pub use booleans::{parse_boolean_token, values_look_boolean};
pub use countries::{country_for_language, is_country_token, language_for_country};
pub use dates::{format_date, parse_date, standardize_date, DateFormat};
pub use geography::{
    abbreviation_for_state, is_known_city, is_state_token, same_state, state_for_abbreviation,
};
pub use languages::{code_for_name, is_language_token, name_for_code, same_language};
pub use missing::{disguised_tokens, is_disguised_missing};
pub use normalize::{case_style, case_variant_groups, squash_whitespace, title_case, CaseStyle};
pub use typo::{damerau_levenshtein, has_letter_stutter, suggest_typo_fixes, TypoSuggestion};
pub use units::{canonical_volume, is_duration, is_ounce_unit, parse_duration_minutes};
