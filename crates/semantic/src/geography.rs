//! US state names/abbreviations and a gazetteer of cities.
//!
//! The Hospital benchmark carries `State`/`City`/`County` columns whose
//! inconsistencies (`"alabama"` vs `"AL"`, city values misplaced into other
//! columns) need geographic world knowledge to resolve.

/// (full name, USPS abbreviation) for all 50 states + DC.
pub const STATES: &[(&str, &str)] = &[
    ("alabama", "AL"),
    ("alaska", "AK"),
    ("arizona", "AZ"),
    ("arkansas", "AR"),
    ("california", "CA"),
    ("colorado", "CO"),
    ("connecticut", "CT"),
    ("delaware", "DE"),
    ("district of columbia", "DC"),
    ("florida", "FL"),
    ("georgia", "GA"),
    ("hawaii", "HI"),
    ("idaho", "ID"),
    ("illinois", "IL"),
    ("indiana", "IN"),
    ("iowa", "IA"),
    ("kansas", "KS"),
    ("kentucky", "KY"),
    ("louisiana", "LA"),
    ("maine", "ME"),
    ("maryland", "MD"),
    ("massachusetts", "MA"),
    ("michigan", "MI"),
    ("minnesota", "MN"),
    ("mississippi", "MS"),
    ("missouri", "MO"),
    ("montana", "MT"),
    ("nebraska", "NE"),
    ("nevada", "NV"),
    ("new hampshire", "NH"),
    ("new jersey", "NJ"),
    ("new mexico", "NM"),
    ("new york", "NY"),
    ("north carolina", "NC"),
    ("north dakota", "ND"),
    ("ohio", "OH"),
    ("oklahoma", "OK"),
    ("oregon", "OR"),
    ("pennsylvania", "PA"),
    ("rhode island", "RI"),
    ("south carolina", "SC"),
    ("south dakota", "SD"),
    ("tennessee", "TN"),
    ("texas", "TX"),
    ("utah", "UT"),
    ("vermont", "VT"),
    ("virginia", "VA"),
    ("washington", "WA"),
    ("west virginia", "WV"),
    ("wisconsin", "WI"),
    ("wyoming", "WY"),
];

/// A small gazetteer of US cities (used by dataset generators and the
/// misplacement detector).
pub const CITIES: &[&str] = &[
    "birmingham",
    "dothan",
    "huntsville",
    "mobile",
    "montgomery",
    "tuscaloosa",
    "phoenix",
    "tucson",
    "mesa",
    "little rock",
    "los angeles",
    "san diego",
    "san francisco",
    "sacramento",
    "denver",
    "boulder",
    "hartford",
    "dover",
    "miami",
    "orlando",
    "tampa",
    "atlanta",
    "savannah",
    "honolulu",
    "boise",
    "chicago",
    "springfield",
    "indianapolis",
    "des moines",
    "wichita",
    "louisville",
    "new orleans",
    "portland",
    "baltimore",
    "boston",
    "detroit",
    "minneapolis",
    "jackson",
    "kansas city",
    "billings",
    "omaha",
    "las vegas",
    "reno",
    "concord",
    "newark",
    "albuquerque",
    "new york",
    "buffalo",
    "charlotte",
    "raleigh",
    "fargo",
    "columbus",
    "cleveland",
    "oklahoma city",
    "tulsa",
    "philadelphia",
    "pittsburgh",
    "providence",
    "charleston",
    "sioux falls",
    "memphis",
    "nashville",
    "houston",
    "dallas",
    "austin",
    "san antonio",
    "salt lake city",
    "burlington",
    "richmond",
    "seattle",
    "spokane",
    "milwaukee",
    "cheyenne",
];

/// USPS abbreviation for a state name (case-insensitive).
pub fn abbreviation_for_state(name: &str) -> Option<&'static str> {
    let lowered = name.trim().to_lowercase();
    STATES.iter().find(|(n, _)| *n == lowered).map(|(_, a)| *a)
}

/// Full state name for a USPS abbreviation (case-insensitive).
pub fn state_for_abbreviation(abbr: &str) -> Option<&'static str> {
    let upper = abbr.trim().to_uppercase();
    STATES.iter().find(|(_, a)| *a == upper).map(|(n, _)| *n)
}

/// True when `value` is a state in either representation.
pub fn is_state_token(value: &str) -> bool {
    abbreviation_for_state(value).is_some() || state_for_abbreviation(value).is_some()
}

/// True when `value` looks like a known city (case-insensitive).
pub fn is_known_city(value: &str) -> bool {
    let lowered = value.trim().to_lowercase();
    CITIES.contains(&lowered.as_str())
}

/// Whether two values denote the same state under different representations.
pub fn same_state(a: &str, b: &str) -> bool {
    let canon = |v: &str| -> Option<&'static str> {
        abbreviation_for_state(v).or_else(|| {
            let upper = v.trim().to_uppercase();
            STATES.iter().find(|(_, ab)| *ab == upper).map(|(_, ab)| *ab)
        })
    };
    match (canon(a), canon(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_lookups() {
        assert_eq!(abbreviation_for_state("Alabama"), Some("AL"));
        assert_eq!(abbreviation_for_state("new york"), Some("NY"));
        assert_eq!(state_for_abbreviation("tx"), Some("texas"));
        assert_eq!(abbreviation_for_state("atlantis"), None);
    }

    #[test]
    fn same_state_across_representations() {
        assert!(same_state("New York", "NY"));
        assert!(same_state("ny", "NY"));
        assert!(!same_state("NY", "NJ"));
        assert!(!same_state("gotham", "NY"));
    }

    #[test]
    fn city_membership() {
        assert!(is_known_city("Birmingham"));
        assert!(is_known_city("  austin "));
        assert!(!is_known_city("gotham"));
    }

    #[test]
    fn tokens() {
        assert!(is_state_token("AL"));
        assert!(is_state_token("alabama"));
        assert!(!is_state_token("zz"));
    }

    #[test]
    fn tables_are_consistent() {
        assert_eq!(STATES.len(), 51);
        for (name, abbr) in STATES {
            assert_eq!(abbreviation_for_state(name), Some(*abbr));
            assert_eq!(state_for_abbreviation(abbr), Some(*name));
        }
    }
}
