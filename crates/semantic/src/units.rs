//! Measurement-unit knowledge: volume abbreviations and durations.
//!
//! The paper's error analysis points at exactly these cases: `"oz"` vs
//! `"ounce"` in Beers, and `"100 min"` vs `"1 hour 40 min"` in Movies
//! (Appendix B expects `"1 hr. 30 min."` and `"90 min"` to both become the
//! float 90).

use cocoon_pattern::Regex;

/// Representations of the fluid-ounce unit, canonical form `"oz"`.
pub const OUNCE_FORMS: &[&str] = &["oz", "oz.", "ounce", "ounces", "fl oz", "fl. oz."];

/// True when `unit` denotes fluid ounces.
pub fn is_ounce_unit(unit: &str) -> bool {
    let lowered = unit.trim().to_lowercase();
    OUNCE_FORMS.contains(&lowered.as_str())
}

/// Canonicalises a volume expression like `"12 ounce"` → `"12 oz"`.
/// Returns `None` when the text is not a recognisable volume.
pub fn canonical_volume(text: &str) -> Option<String> {
    let trimmed = text.trim();
    let re = Regex::new(r"^(\d+(?:\.\d+)?)\s*([A-Za-z. ]+)$").expect("static pattern");
    let caps = re.captures(trimmed)?;
    let amount = caps[1].clone()?;
    let unit = caps[2].clone()?;
    if is_ounce_unit(&unit) {
        Some(format!("{amount} oz"))
    } else {
        None
    }
}

/// Parses a duration expression into total minutes.
///
/// Accepts the forms observed in the Movies benchmark:
/// `"90 min"`, `"100 min."`, `"1 hr. 30 min."`, `"2 hours"`, `"1 h 40 m"`,
/// `"1 hour 40 min"`, and bare numbers (already minutes).
pub fn parse_duration_minutes(text: &str) -> Option<f64> {
    let lowered = text.trim().to_lowercase();
    if lowered.is_empty() {
        return None;
    }
    // Bare number → minutes.
    if let Ok(n) = lowered.parse::<f64>() {
        return Some(n);
    }
    let normalized = lowered.replace(['.', ','], " ");
    let tokens: Vec<&str> = normalized.split_whitespace().collect();
    let mut minutes = 0.0f64;
    let mut pending: Option<f64> = None;
    let mut recognized = false;
    for token in tokens {
        if let Ok(n) = token.parse::<f64>() {
            // Two numbers in a row: the first had no unit — malformed.
            if pending.is_some() {
                return None;
            }
            pending = Some(n);
            continue;
        }
        let unit_minutes = match token {
            "h" | "hr" | "hrs" | "hour" | "hours" => 60.0,
            "m" | "min" | "mins" | "minute" | "minutes" => 1.0,
            _ => {
                // token may be glued like "90min" or "1hr"
                if let Some(m) = parse_glued(token) {
                    minutes += m;
                    recognized = true;
                    continue;
                }
                return None;
            }
        };
        let amount = pending.take()?;
        minutes += amount * unit_minutes;
        recognized = true;
    }
    if let Some(trailing) = pending {
        // trailing number without a unit (e.g. "1 hr 30") — treat as minutes.
        minutes += trailing;
        recognized = true;
    }
    if recognized {
        Some(minutes)
    } else {
        None
    }
}

/// Parses glued number+unit tokens like `"90min"` / `"2hr"` / `"1h"`.
fn parse_glued(token: &str) -> Option<f64> {
    let digits_end = token.find(|c: char| !c.is_ascii_digit() && c != '.')?;
    if digits_end == 0 {
        return None;
    }
    let (num, unit) = token.split_at(digits_end);
    let n: f64 = num.parse().ok()?;
    match unit {
        "h" | "hr" | "hrs" | "hour" | "hours" => Some(n * 60.0),
        "m" | "min" | "mins" | "minute" | "minutes" => Some(n),
        _ => None,
    }
}

/// True when `text` reads as a duration.
pub fn is_duration(text: &str) -> bool {
    parse_duration_minutes(text).is_some() && text.trim().parse::<f64>().is_err()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ounce_forms() {
        assert!(is_ounce_unit("oz"));
        assert!(is_ounce_unit("OUNCE"));
        assert!(is_ounce_unit("fl. oz."));
        assert!(!is_ounce_unit("ml"));
    }

    #[test]
    fn canonical_volume_conversions() {
        assert_eq!(canonical_volume("12 ounce").as_deref(), Some("12 oz"));
        assert_eq!(canonical_volume("12 oz").as_deref(), Some("12 oz"));
        assert_eq!(canonical_volume("16.9 ounces").as_deref(), Some("16.9 oz"));
        assert_eq!(canonical_volume("twelve ounce"), None);
        assert_eq!(canonical_volume("500 ml"), None);
    }

    #[test]
    fn paper_duration_examples() {
        // Appendix B: "1 hr. 30 min." and "90 min" → 90.
        assert_eq!(parse_duration_minutes("1 hr. 30 min."), Some(90.0));
        assert_eq!(parse_duration_minutes("90 min"), Some(90.0));
        // §3.2: "100 min" vs "1 hour 40 min".
        assert_eq!(parse_duration_minutes("100 min"), Some(100.0));
        assert_eq!(parse_duration_minutes("1 hour 40 min"), Some(100.0));
    }

    #[test]
    fn more_duration_forms() {
        assert_eq!(parse_duration_minutes("2 hours"), Some(120.0));
        assert_eq!(parse_duration_minutes("90"), Some(90.0));
        assert_eq!(parse_duration_minutes("1h 40m"), Some(100.0));
        assert_eq!(parse_duration_minutes("90min"), Some(90.0));
        assert_eq!(parse_duration_minutes("1hr"), Some(60.0));
        assert_eq!(parse_duration_minutes("1 hr 30"), Some(90.0));
    }

    #[test]
    fn non_durations_rejected() {
        assert_eq!(parse_duration_minutes("hello"), None);
        assert_eq!(parse_duration_minutes(""), None);
        assert_eq!(parse_duration_minutes("12 oz"), None);
        assert_eq!(parse_duration_minutes("1 2"), None);
    }

    #[test]
    fn is_duration_excludes_bare_numbers() {
        assert!(is_duration("90 min"));
        assert!(!is_duration("90"));
        assert!(!is_duration("abc"));
    }
}
