//! Casing and whitespace normalisation knowledge.
//!
//! The benchmark convention in §3.1 treats case as acceptable "as long as
//! the case is consistent across values"; the semantic cleaner therefore
//! detects *mixed* casing of the same underlying token and normalises to the
//! dominant form.

use std::collections::HashMap;

/// Collapses internal whitespace runs and trims.
pub fn squash_whitespace(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The casing style of a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseStyle {
    Lower,
    Upper,
    /// First alphabetic char upper, rest lower (per word).
    Title,
    Mixed,
    /// No alphabetic characters at all.
    NonAlphabetic,
}

/// Classifies the casing style of `s`.
pub fn case_style(s: &str) -> CaseStyle {
    let has_alpha = s.chars().any(|c| c.is_alphabetic());
    if !has_alpha {
        return CaseStyle::NonAlphabetic;
    }
    if s == s.to_lowercase() {
        return CaseStyle::Lower;
    }
    if s == s.to_uppercase() {
        return CaseStyle::Upper;
    }
    if s == title_case(s) {
        return CaseStyle::Title;
    }
    CaseStyle::Mixed
}

/// Title-cases each whitespace-separated word.
pub fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|word| {
            let mut chars = word.chars();
            match chars.next() {
                Some(first) => {
                    first.to_uppercase().collect::<String>() + &chars.as_str().to_lowercase()
                }
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Groups of values that are equal up to case/whitespace, for censuses where
/// more than one variant appears. Each group maps the canonical (dominant)
/// form to its variants.
pub fn case_variant_groups(census: &[(String, usize)]) -> Vec<(String, Vec<String>)> {
    let mut groups: HashMap<String, Vec<(String, usize)>> = HashMap::new();
    for (value, count) in census {
        let key = squash_whitespace(&value.to_lowercase());
        groups.entry(key).or_default().push((value.clone(), *count));
    }
    let mut out: Vec<(String, Vec<String>)> = groups
        .into_values()
        .filter(|members| members.len() > 1)
        .map(|mut members| {
            members.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let canonical = members[0].0.clone();
            let variants = members.into_iter().skip(1).map(|(v, _)| v).collect();
            (canonical, variants)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_squash() {
        assert_eq!(squash_whitespace("  a   b \t c "), "a b c");
        assert_eq!(squash_whitespace(""), "");
    }

    #[test]
    fn style_classification() {
        assert_eq!(case_style("austin"), CaseStyle::Lower);
        assert_eq!(case_style("AUSTIN"), CaseStyle::Upper);
        assert_eq!(case_style("Austin"), CaseStyle::Title);
        assert_eq!(case_style("AuStIn"), CaseStyle::Mixed);
        assert_eq!(case_style("123-456"), CaseStyle::NonAlphabetic);
        assert_eq!(case_style("New York"), CaseStyle::Title);
    }

    #[test]
    fn title_casing() {
        assert_eq!(title_case("new york"), "New York");
        assert_eq!(title_case("NEW YORK"), "New York");
    }

    #[test]
    fn variant_groups_pick_dominant() {
        let census =
            vec![("Austin".to_string(), 30), ("AUSTIN".to_string(), 3), ("Dallas".to_string(), 10)];
        let groups = case_variant_groups(&census);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, "Austin");
        assert_eq!(groups[0].1, vec!["AUSTIN".to_string()]);
    }

    #[test]
    fn no_groups_when_consistent() {
        let census = vec![("a".to_string(), 1), ("b".to_string(), 2)];
        assert!(case_variant_groups(&census).is_empty());
    }

    #[test]
    fn whitespace_variants_grouped() {
        let census = vec![("new  york".to_string(), 1), ("new york".to_string(), 9)];
        let groups = case_variant_groups(&census);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, "new york");
    }
}
