//! Disguised-missing-value (DMV) knowledge.
//!
//! §2.1.3: "values that are currently not NULL, but semantically means that
//! the value are missing (e.g., string values like 'N/A', 'null')."
//! The token list follows the DMV literature the paper cites (FAHES).

/// Textual tokens that disguise a missing value.
pub const MISSING_TOKENS: &[&str] = &[
    "n/a",
    "na",
    "n.a.",
    "n a",
    "null",
    "nil",
    "none",
    "missing",
    "unknown",
    "undefined",
    "not available",
    "not applicable",
    "no value",
    "-",
    "--",
    "---",
    "?",
    "??",
    "presumed",
    "empty",
    "blank",
    "tba",
    "tbd",
];

/// Numeric sentinel values that often disguise missing measurements.
pub const MISSING_SENTINELS: &[&str] = &["-1", "-99", "-999", "9999", "99999"];

/// True when `value` is a disguised missing value.
///
/// `allow_sentinels` additionally treats numeric sentinels (−1, 9999, …) as
/// missing — appropriate for measurement columns, not for arbitrary ints.
pub fn is_disguised_missing(value: &str, allow_sentinels: bool) -> bool {
    let lowered = value.trim().to_lowercase();
    if lowered.is_empty() {
        return true;
    }
    if MISSING_TOKENS.contains(&lowered.as_str()) {
        return true;
    }
    allow_sentinels && MISSING_SENTINELS.contains(&lowered.as_str())
}

/// Filters a value census to the DMV tokens it contains.
pub fn disguised_tokens<S: AsRef<str>>(values: &[S], allow_sentinels: bool) -> Vec<&str> {
    values.iter().map(|s| s.as_ref()).filter(|v| is_disguised_missing(v, allow_sentinels)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_tokens() {
        for v in ["N/A", "null", "NULL", " none ", "-", "?", "Unknown"] {
            assert!(is_disguised_missing(v, false), "{v} should be DMV");
        }
    }

    #[test]
    fn ordinary_values_pass() {
        for v in ["Alabama", "0", "42", "o'brien"] {
            assert!(!is_disguised_missing(v, false), "{v} should not be DMV");
        }
    }

    #[test]
    fn sentinels_gated() {
        assert!(!is_disguised_missing("9999", false));
        assert!(is_disguised_missing("9999", true));
        assert!(is_disguised_missing("-1", true));
        assert!(!is_disguised_missing("17", true));
    }

    #[test]
    fn census_filter() {
        let values = ["austin", "N/A", "dallas", "null"];
        assert_eq!(disguised_tokens(&values, false), vec!["N/A", "null"]);
    }

    #[test]
    fn empty_string_is_missing() {
        assert!(is_disguised_missing("", false));
        assert!(is_disguised_missing("   ", false));
    }
}
