//! Typo detection and correction.
//!
//! The "semantic" typo judgement the paper attributes to LLMs ("cofffee" is
//! a strange spelling of "coffee") is modelled with generic string
//! knowledge: Damerau–Levenshtein distance, character-repetition analysis,
//! and frequency asymmetry (a rare value lying one edit away from a frequent
//! value is a typo of it, not vice versa).

use std::collections::HashMap;

/// Damerau–Levenshtein distance (optimal string alignment variant:
/// insertions, deletions, substitutions, adjacent transpositions).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    osa_distance(&a, &b, usize::MAX).expect("unbounded distance always computes")
}

/// The OSA recurrence with an early-exit `bound`: returns `None` once the
/// distance provably exceeds `bound`. Every cell of a row is ≥ the smallest
/// cell of the two rows it references, so when two consecutive row minima
/// exceed the bound no later cell can come back under it. The typo scan
/// calls this with thresholds of 1–3, so most non-typo pairs abort after a
/// few rows instead of filling the whole matrix.
fn osa_distance(a: &[char], b: &[char], bound: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return (m <= bound).then_some(m);
    }
    if m == 0 {
        return (n <= bound).then_some(n);
    }
    // Three rolling rows suffice for the OSA recurrence.
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr: Vec<usize> = vec![0; m + 1];
    let mut prev_row_min = 0usize;
    for i in 1..=n {
        curr[0] = i;
        let mut row_min = curr[0];
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                curr[j] = curr[j].min(prev2[j - 2] + 1);
            }
            row_min = row_min.min(curr[j]);
        }
        if row_min > bound && prev_row_min > bound {
            return None;
        }
        prev_row_min = row_min;
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    (prev[m] <= bound).then(|| prev[m])
}

/// Maximum edit distance at which `candidate` may be considered a typo of
/// `target`, scaled by length (longer words tolerate more edits).
pub fn typo_threshold(len: usize) -> usize {
    match len {
        0..=3 => 1,
        4..=7 => 1,
        8..=12 => 2,
        _ => 3,
    }
}

/// True when two values differ only in their digits (`"16 oz"` vs
/// `"12 oz"`, `"1/1/2000"` vs `"1/2/2000"`). Humans read these as distinct
/// measurements, not typos, so the typo detector must not merge them.
pub fn differs_only_in_digits(a: &str, b: &str) -> bool {
    let strip = |s: &str| -> (String, bool) {
        let mut out = String::with_capacity(s.len());
        let mut had_digit = false;
        for c in s.chars() {
            if c.is_ascii_digit() {
                had_digit = true;
            } else {
                out.push(c);
            }
        }
        (out, had_digit)
    };
    let (a_rest, a_digits) = strip(a);
    let (b_rest, b_digits) = strip(b);
    a_digits && b_digits && a_rest == b_rest
}

/// True when `candidate` contains a run of ≥3 identical letters — the
/// "cofffee" signature from the paper's Figure 2 prompt.
pub fn has_letter_stutter(candidate: &str) -> bool {
    let chars: Vec<char> = candidate.chars().collect();
    chars.windows(3).any(|w| w[0] == w[1] && w[1] == w[2] && w[0].is_alphabetic())
}

/// A proposed typo correction.
#[derive(Debug, Clone, PartialEq)]
pub struct TypoSuggestion {
    pub from: String,
    pub to: String,
    pub distance: usize,
}

/// Given a frequency census of distinct values, proposes corrections for
/// rare values lying within typo distance of much more frequent ones.
///
/// `dominance` is how many times more frequent the target must be than the
/// candidate (the frequency asymmetry that separates "Autsin is a typo of
/// Austin" from "Dallas and Austin are different cities").
pub fn suggest_typo_fixes(census: &[(String, usize)], dominance: f64) -> Vec<TypoSuggestion> {
    let mut suggestions = Vec::new();
    let by_value: HashMap<&str, usize> = census.iter().map(|(v, c)| (v.as_str(), *c)).collect();
    // Lowercase once per value, not once per pair; the char vectors also
    // give O(1) length reads for the length-gap filter below.
    let lowered: Vec<Vec<char>> =
        census.iter().map(|(v, _)| v.to_lowercase().chars().collect()).collect();
    for (ci, (candidate, cand_count)) in census.iter().enumerate() {
        let mut best: Option<(usize, &str, usize)> = None; // (distance, target, count)
        for (ti, (target, target_count)) in census.iter().enumerate() {
            if candidate == target {
                continue;
            }
            if (*target_count as f64) < (*cand_count as f64) * dominance {
                continue;
            }
            let (cand_len, target_len) = (lowered[ci].len(), lowered[ti].len());
            let threshold = typo_threshold(cand_len.max(target_len));
            // Edit distance is at least the length gap: skip hopeless pairs
            // before the digit check and the DP.
            if cand_len.abs_diff(target_len) > threshold {
                continue;
            }
            if differs_only_in_digits(candidate, target) {
                continue;
            }
            let Some(distance) = osa_distance(&lowered[ci], &lowered[ti], threshold) else {
                continue;
            };
            if distance == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bd, _, bc)) => distance < bd || (distance == bd && *target_count > bc),
            };
            if better {
                best = Some((distance, target.as_str(), *target_count));
            }
        }
        if let Some((distance, target, _)) = best {
            // Never "correct" toward a value that is itself a typo of
            // something even more frequent (chains collapse to the head).
            let target_is_dominant = by_value.get(target).copied().unwrap_or(0)
                >= by_value.get(candidate.as_str()).copied().unwrap_or(0);
            if target_is_dominant {
                suggestions.push(TypoSuggestion {
                    from: candidate.clone(),
                    to: target.to_string(),
                    distance,
                });
            }
        }
    }
    suggestions.sort_by(|a, b| a.from.cmp(&b.from));
    suggestions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_metric_axioms() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
        // symmetry
        assert_eq!(
            damerau_levenshtein("kitten", "sitting"),
            damerau_levenshtein("sitting", "kitten")
        );
    }

    #[test]
    fn classic_distances() {
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("coffee", "cofffee"), 1);
        assert_eq!(damerau_levenshtein("austin", "autsin"), 1); // transposition
        assert_eq!(damerau_levenshtein("abcd", "acbd"), 1);
    }

    #[test]
    fn stutter_detection() {
        assert!(has_letter_stutter("cofffee"));
        assert!(!has_letter_stutter("coffee"));
        assert!(!has_letter_stutter("1111")); // digits aren't letter stutter
    }

    #[test]
    fn suggests_fix_for_rare_variant() {
        let census =
            vec![("Austin".to_string(), 40), ("Autsin".to_string(), 1), ("Dallas".to_string(), 30)];
        let fixes = suggest_typo_fixes(&census, 5.0);
        assert_eq!(fixes.len(), 1);
        assert_eq!(fixes[0].from, "Autsin");
        assert_eq!(fixes[0].to, "Austin");
    }

    #[test]
    fn distinct_real_values_not_merged() {
        // Dallas vs Austin: distance way above threshold.
        let census = vec![("Austin".to_string(), 40), ("Dallas".to_string(), 2)];
        assert!(suggest_typo_fixes(&census, 5.0).is_empty());
        // "cat" vs "car": close but both frequent — no dominance.
        let census = vec![("cat".to_string(), 20), ("car".to_string(), 18)];
        assert!(suggest_typo_fixes(&census, 5.0).is_empty());
    }

    #[test]
    fn prefers_closer_then_more_frequent_target() {
        let census =
            vec![("colour".to_string(), 50), ("color".to_string(), 60), ("colr".to_string(), 1)];
        let fixes = suggest_typo_fixes(&census, 5.0);
        assert_eq!(fixes.len(), 1);
        // "colr" is distance 1 from "color", 2 from "colour".
        assert_eq!(fixes[0].to, "color");
    }

    #[test]
    fn thresholds_scale_with_length() {
        assert_eq!(typo_threshold(3), 1);
        assert_eq!(typo_threshold(10), 2);
        assert_eq!(typo_threshold(20), 3);
    }
}
