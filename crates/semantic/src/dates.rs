//! Date-representation knowledge.
//!
//! §2.1 (ordering note) walks through a human-entered date column: fix typos
//! first (`"1/1/2000x"` → `"1/1/2000"`), then recognise the format families
//! (`\d{2}/\d{2}/\d{4}`), standardise them, and only then `CAST` to DATE.
//! This module knows the common textual date families and converts between
//! them.

use cocoon_table::Date;

/// A recognised textual date format family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateFormat {
    /// `YYYY-MM-DD`
    Iso,
    /// `M/D/YYYY` (with or without zero padding)
    SlashMdy,
    /// `Month D, YYYY` (e.g. `January 5, 2001`)
    LongMdy,
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Detects which family `text` belongs to and parses it.
pub fn parse_date(text: &str) -> Option<(DateFormat, Date)> {
    let trimmed = text.trim();
    if let Some(d) = Date::parse_iso(trimmed) {
        return Some((DateFormat::Iso, d));
    }
    if let Some(d) = Date::parse_mdy(trimmed) {
        return Some((DateFormat::SlashMdy, d));
    }
    parse_long(trimmed).map(|d| (DateFormat::LongMdy, d))
}

fn parse_long(text: &str) -> Option<Date> {
    let cleaned = text.replace(',', " ");
    let mut parts = cleaned.split_whitespace();
    let month_name = parts.next()?.to_lowercase();
    let month = MONTHS.iter().position(|m| *m == month_name)? as u8 + 1;
    let day: u8 = parts.next()?.parse().ok()?;
    let year: i32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Date::new(year, month, day)
}

/// Renders `date` in the requested family.
pub fn format_date(date: Date, format: DateFormat) -> String {
    match format {
        DateFormat::Iso => date.to_iso(),
        DateFormat::SlashMdy => {
            format!("{}/{}/{:04}", date.month(), date.day(), date.year())
        }
        DateFormat::LongMdy => {
            let month = MONTHS[(date.month() - 1) as usize];
            let mut m = month.to_string();
            m[..1].make_ascii_uppercase();
            format!("{m} {}, {}", date.day(), date.year())
        }
    }
}

/// Converts `text` into `target` format, if it parses as any known family.
pub fn standardize_date(text: &str, target: DateFormat) -> Option<String> {
    let (_, date) = parse_date(text)?;
    Some(format_date(date, target))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_detection() {
        assert_eq!(parse_date("2020-01-02").unwrap().0, DateFormat::Iso);
        assert_eq!(parse_date("1/2/2020").unwrap().0, DateFormat::SlashMdy);
        assert_eq!(parse_date("January 2, 2020").unwrap().0, DateFormat::LongMdy);
        assert!(parse_date("not a date").is_none());
        assert!(parse_date("Smarch 1, 2020").is_none());
    }

    #[test]
    fn all_families_agree() {
        let d = Date::new(2020, 1, 2).unwrap();
        for text in ["2020-01-02", "1/2/2020", "January 2, 2020"] {
            assert_eq!(parse_date(text).unwrap().1, d, "{text}");
        }
    }

    #[test]
    fn formatting_round_trips() {
        let d = Date::new(1999, 12, 5).unwrap();
        for fmt in [DateFormat::Iso, DateFormat::SlashMdy, DateFormat::LongMdy] {
            let text = format_date(d, fmt);
            let (detected, parsed) = parse_date(&text).unwrap();
            assert_eq!(detected, fmt);
            assert_eq!(parsed, d);
        }
    }

    #[test]
    fn standardize_across_families() {
        assert_eq!(
            standardize_date("January 2, 2020", DateFormat::Iso).as_deref(),
            Some("2020-01-02")
        );
        assert_eq!(
            standardize_date("2020-01-02", DateFormat::SlashMdy).as_deref(),
            Some("1/2/2020")
        );
        assert_eq!(standardize_date("garbage", DateFormat::Iso), None);
    }
}
