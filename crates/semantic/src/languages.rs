//! Language names and ISO 639-2/B codes.
//!
//! Example 1 of the paper: the Rayyan `article_language` column mixes
//! `"eng"` and `"English"`; the semantic cleaner maps full names to the
//! dominant three-letter representation (`"English" → "eng"`, `"French" →
//! "fre"`, `"German" → "ger"`, `"Chinese" → "chi"`). This table is the
//! general world knowledge behind that mapping.

/// (english name, ISO 639-2/B code) pairs for common publication languages.
pub const LANGUAGES: &[(&str, &str)] = &[
    ("english", "eng"),
    ("french", "fre"),
    ("german", "ger"),
    ("chinese", "chi"),
    ("spanish", "spa"),
    ("portuguese", "por"),
    ("italian", "ita"),
    ("japanese", "jpn"),
    ("korean", "kor"),
    ("russian", "rus"),
    ("dutch", "dut"),
    ("polish", "pol"),
    ("turkish", "tur"),
    ("arabic", "ara"),
    ("hebrew", "heb"),
    ("swedish", "swe"),
    ("danish", "dan"),
    ("norwegian", "nor"),
    ("finnish", "fin"),
    ("greek", "gre"),
    ("czech", "cze"),
    ("hungarian", "hun"),
    ("romanian", "rum"),
    ("croatian", "hrv"),
    ("serbian", "srp"),
    ("ukrainian", "ukr"),
    ("persian", "per"),
    ("hindi", "hin"),
    ("thai", "tha"),
    ("vietnamese", "vie"),
    ("indonesian", "ind"),
];

/// ISO code for an English language name (case-insensitive), if known.
pub fn code_for_name(name: &str) -> Option<&'static str> {
    let lowered = name.trim().to_lowercase();
    LANGUAGES.iter().find(|(n, _)| *n == lowered).map(|(_, c)| *c)
}

/// English name for an ISO code (case-insensitive), if known.
pub fn name_for_code(code: &str) -> Option<&'static str> {
    let lowered = code.trim().to_lowercase();
    LANGUAGES.iter().find(|(_, c)| *c == lowered).map(|(n, _)| *n)
}

/// True when `value` denotes a language in either representation.
pub fn is_language_token(value: &str) -> bool {
    code_for_name(value).is_some() || name_for_code(value).is_some()
}

/// Whether two values denote the same language under different
/// representations (`"English"` vs `"eng"`).
pub fn same_language(a: &str, b: &str) -> bool {
    let canon = |v: &str| -> Option<&'static str> {
        code_for_name(v).or_else(|| {
            let lowered = v.trim().to_lowercase();
            LANGUAGES.iter().find(|(_, c)| *c == lowered).map(|(_, c)| *c)
        })
    };
    match (canon(a), canon(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(code_for_name("English"), Some("eng"));
        assert_eq!(code_for_name("French"), Some("fre"));
        assert_eq!(code_for_name("German"), Some("ger"));
        assert_eq!(code_for_name("Chinese"), Some("chi"));
    }

    #[test]
    fn reverse_lookup() {
        assert_eq!(name_for_code("ENG"), Some("english"));
        assert_eq!(name_for_code("zzz"), None);
    }

    #[test]
    fn same_language_detection() {
        assert!(same_language("English", "eng"));
        assert!(same_language("eng", "ENG"));
        assert!(!same_language("English", "fre"));
        assert!(!same_language("pizza", "eng"));
    }

    #[test]
    fn tokens() {
        assert!(is_language_token("spanish"));
        assert!(is_language_token("spa"));
        assert!(!is_language_token("spaz"));
    }
}
