//! Cleaning operations: the auditable record of what the pipeline did.
//!
//! Each applied step captures the statistical evidence, the LLM reasoning,
//! and the SQL it compiled to — together they are the "well-commented SQL
//! queries" of Figure 5.

use cocoon_sql::{render_select, Select};
use std::fmt;

/// The issue taxonomy of §2.1, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueKind {
    /// Rare string values that are variants of frequent ones (§2.1.1).
    StringOutliers,
    /// Values breaking the column's dominant character pattern (§2.1.2).
    PatternOutliers,
    /// Sentinel strings standing in for NULL (§2.1.3).
    DisguisedMissing,
    /// Text columns that should carry a concrete type (§2.1.4).
    ColumnType,
    /// Numeric values outside plausible bounds (§2.1.5).
    NumericOutliers,
    /// Rows violating discovered functional dependencies (§2.1.6).
    FunctionalDependency,
    /// Exact duplicate rows (§2.1.7).
    Duplication,
    /// Duplicate values in key-like columns (§2.1.8).
    Uniqueness,
}

impl IssueKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            IssueKind::StringOutliers => "String Outliers",
            IssueKind::PatternOutliers => "Pattern Outliers",
            IssueKind::DisguisedMissing => "Disguised Missing Value",
            IssueKind::ColumnType => "Column Type",
            IssueKind::NumericOutliers => "Numeric Outliers",
            IssueKind::FunctionalDependency => "Functional Dependency",
            IssueKind::Duplication => "Duplication",
            IssueKind::Uniqueness => "Column Uniqueness",
        }
    }

    /// Paper section for the report.
    pub fn section(&self) -> &'static str {
        match self {
            IssueKind::StringOutliers => "2.1.1",
            IssueKind::PatternOutliers => "2.1.2",
            IssueKind::DisguisedMissing => "2.1.3",
            IssueKind::ColumnType => "2.1.4",
            IssueKind::NumericOutliers => "2.1.5",
            IssueKind::FunctionalDependency => "2.1.6",
            IssueKind::Duplication => "2.1.7",
            IssueKind::Uniqueness => "2.1.8",
        }
    }
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How sure the pipeline is that a repair is correct.
///
/// Two signals, combined by [`score`](Confidence::score):
///
/// * **self-report** — the model's own 0–1 estimate, parsed from the
///   detection/cleaning completion (absent answers default to
///   [`DEFAULT_SELF_REPORT`]);
/// * **agreement** — for a deterministically sampled subset of repairs, the
///   fraction of independent re-ask variants (sent through the batch path,
///   so a coalescing dispatcher sees them as one flight) that endorse the
///   repair. `None` when the repair was not sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Confidence {
    /// The model's self-reported 0–1 confidence.
    pub self_report: f64,
    /// Cross-variant agreement in \[0,1\], when sampled.
    pub agreement: Option<f64>,
}

/// Self-report assumed when a completion carries no `Confidence` field —
/// chosen so legacy models neither auto-fail a strict threshold nor claim
/// certainty they never stated.
pub const DEFAULT_SELF_REPORT: f64 = 0.8;

impl Default for Confidence {
    fn default() -> Self {
        Confidence { self_report: DEFAULT_SELF_REPORT, agreement: None }
    }
}

impl Confidence {
    /// A confidence from an optional parsed self-report, clamped to \[0,1\].
    pub fn self_reported(report: Option<f64>) -> Self {
        Confidence {
            self_report: report.unwrap_or(DEFAULT_SELF_REPORT).clamp(0.0, 1.0),
            agreement: None,
        }
    }

    /// The combined score a threshold policy compares against: the
    /// self-report alone, or its even blend with agreement when the repair
    /// was sampled for cross-variant verification.
    pub fn score(&self) -> f64 {
        match self.agreement {
            Some(agreement) => (self.self_report + agreement) / 2.0,
            None => self.self_report,
        }
    }

    /// One-line rendering for reports and SQL comments.
    pub fn describe(&self) -> String {
        match self.agreement {
            Some(agreement) => format!(
                "{:.3} (self-report {:.2}, agreement {:.2})",
                self.score(),
                self.self_report,
                agreement
            ),
            None => format!("{:.3} (self-report {:.2})", self.score(), self.self_report),
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// One applied cleaning operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningOp {
    /// Which issue type this step repaired.
    pub issue: IssueKind,
    /// Target column, or `None` for whole-table operations.
    pub column: Option<String>,
    /// Statistical evidence that triggered the step.
    pub statistical_evidence: String,
    /// LLM reasoning (detection and/or cleaning explanations).
    pub llm_reasoning: String,
    /// The SQL this step compiled to.
    pub sql: Select,
    /// Cells changed (or rows removed, for row-level ops).
    pub cells_changed: usize,
    /// How sure the pipeline is that this repair is correct.
    pub confidence: Confidence,
}

impl CleaningOp {
    /// The commented SQL text of this operation (Figure 5 style).
    pub fn rendered_sql(&self) -> String {
        let mut sql = self.sql.clone();
        let mut comment = format!(
            "[{} — §{}]{}",
            self.issue.name(),
            self.issue.section(),
            match &self.column {
                Some(c) => format!(" column: {c}"),
                None => String::new(),
            }
        );
        if !self.statistical_evidence.is_empty() {
            comment.push_str(&format!("\nstatistical detection: {}", self.statistical_evidence));
        }
        if !self.llm_reasoning.is_empty() {
            comment.push_str(&format!("\nsemantic reasoning: {}", self.llm_reasoning));
        }
        comment.push_str(&format!("\nconfidence: {}", self.confidence.describe()));
        sql.comment = Some(comment);
        render_select(&sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoon_sql::Select;

    #[test]
    fn issue_names_and_sections() {
        assert_eq!(IssueKind::StringOutliers.name(), "String Outliers");
        assert_eq!(IssueKind::Uniqueness.section(), "2.1.8");
        assert_eq!(IssueKind::DisguisedMissing.to_string(), "Disguised Missing Value");
    }

    #[test]
    fn rendered_sql_carries_reasoning() {
        let op = CleaningOp {
            issue: IssueKind::StringOutliers,
            column: Some("lang".into()),
            statistical_evidence: "2 rare values".into(),
            llm_reasoning: "mixed representations".into(),
            sql: Select::star("t"),
            cells_changed: 9,
            confidence: Confidence { self_report: 0.9, agreement: Some(1.0) },
        };
        let sql = op.rendered_sql();
        assert!(sql.contains("-- [String Outliers — §2.1.1] column: lang"));
        assert!(sql.contains("-- statistical detection: 2 rare values"));
        assert!(sql.contains("-- semantic reasoning: mixed representations"));
        assert!(sql.contains("-- confidence: 0.950 (self-report 0.90, agreement 1.00)"));
        assert!(sql.contains("SELECT *"));
    }

    #[test]
    fn confidence_scoring() {
        let plain = Confidence::self_reported(Some(0.7));
        assert_eq!(plain.score(), 0.7);
        assert_eq!(plain.agreement, None);
        // Absent self-reports take the documented default.
        assert_eq!(Confidence::self_reported(None).score(), DEFAULT_SELF_REPORT);
        // Out-of-range reports clamp instead of poisoning thresholds.
        assert_eq!(Confidence::self_reported(Some(7.0)).score(), 1.0);
        assert_eq!(Confidence::self_reported(Some(-1.0)).score(), 0.0);
        // Agreement blends evenly.
        let sampled = Confidence { self_report: 0.6, agreement: Some(1.0) };
        assert!((sampled.score() - 0.8).abs() < 1e-12);
        assert_eq!(sampled.describe(), "0.800 (self-report 0.60, agreement 1.00)");
        assert_eq!(Confidence::default().describe(), "0.800 (self-report 0.80)");
    }
}
