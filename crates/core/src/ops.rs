//! Cleaning operations: the auditable record of what the pipeline did.
//!
//! Each applied step captures the statistical evidence, the LLM reasoning,
//! and the SQL it compiled to — together they are the "well-commented SQL
//! queries" of Figure 5.

use cocoon_sql::{render_select, Select};
use std::fmt;

/// The issue taxonomy of §2.1, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueKind {
    /// Rare string values that are variants of frequent ones (§2.1.1).
    StringOutliers,
    /// Values breaking the column's dominant character pattern (§2.1.2).
    PatternOutliers,
    /// Sentinel strings standing in for NULL (§2.1.3).
    DisguisedMissing,
    /// Text columns that should carry a concrete type (§2.1.4).
    ColumnType,
    /// Numeric values outside plausible bounds (§2.1.5).
    NumericOutliers,
    /// Rows violating discovered functional dependencies (§2.1.6).
    FunctionalDependency,
    /// Exact duplicate rows (§2.1.7).
    Duplication,
    /// Duplicate values in key-like columns (§2.1.8).
    Uniqueness,
}

impl IssueKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            IssueKind::StringOutliers => "String Outliers",
            IssueKind::PatternOutliers => "Pattern Outliers",
            IssueKind::DisguisedMissing => "Disguised Missing Value",
            IssueKind::ColumnType => "Column Type",
            IssueKind::NumericOutliers => "Numeric Outliers",
            IssueKind::FunctionalDependency => "Functional Dependency",
            IssueKind::Duplication => "Duplication",
            IssueKind::Uniqueness => "Column Uniqueness",
        }
    }

    /// Paper section for the report.
    pub fn section(&self) -> &'static str {
        match self {
            IssueKind::StringOutliers => "2.1.1",
            IssueKind::PatternOutliers => "2.1.2",
            IssueKind::DisguisedMissing => "2.1.3",
            IssueKind::ColumnType => "2.1.4",
            IssueKind::NumericOutliers => "2.1.5",
            IssueKind::FunctionalDependency => "2.1.6",
            IssueKind::Duplication => "2.1.7",
            IssueKind::Uniqueness => "2.1.8",
        }
    }
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One applied cleaning operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningOp {
    /// Which issue type this step repaired.
    pub issue: IssueKind,
    /// Target column, or `None` for whole-table operations.
    pub column: Option<String>,
    /// Statistical evidence that triggered the step.
    pub statistical_evidence: String,
    /// LLM reasoning (detection and/or cleaning explanations).
    pub llm_reasoning: String,
    /// The SQL this step compiled to.
    pub sql: Select,
    /// Cells changed (or rows removed, for row-level ops).
    pub cells_changed: usize,
}

impl CleaningOp {
    /// The commented SQL text of this operation (Figure 5 style).
    pub fn rendered_sql(&self) -> String {
        let mut sql = self.sql.clone();
        let mut comment = format!(
            "[{} — §{}]{}",
            self.issue.name(),
            self.issue.section(),
            match &self.column {
                Some(c) => format!(" column: {c}"),
                None => String::new(),
            }
        );
        if !self.statistical_evidence.is_empty() {
            comment.push_str(&format!("\nstatistical detection: {}", self.statistical_evidence));
        }
        if !self.llm_reasoning.is_empty() {
            comment.push_str(&format!("\nsemantic reasoning: {}", self.llm_reasoning));
        }
        sql.comment = Some(comment);
        render_select(&sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoon_sql::Select;

    #[test]
    fn issue_names_and_sections() {
        assert_eq!(IssueKind::StringOutliers.name(), "String Outliers");
        assert_eq!(IssueKind::Uniqueness.section(), "2.1.8");
        assert_eq!(IssueKind::DisguisedMissing.to_string(), "Disguised Missing Value");
    }

    #[test]
    fn rendered_sql_carries_reasoning() {
        let op = CleaningOp {
            issue: IssueKind::StringOutliers,
            column: Some("lang".into()),
            statistical_evidence: "2 rare values".into(),
            llm_reasoning: "mixed representations".into(),
            sql: Select::star("t"),
            cells_changed: 9,
        };
        let sql = op.rendered_sql();
        assert!(sql.contains("-- [String Outliers — §2.1.1] column: lang"));
        assert!(sql.contains("-- statistical detection: 2 rare values"));
        assert!(sql.contains("-- semantic reasoning: mixed representations"));
        assert!(sql.contains("SELECT *"));
    }
}
