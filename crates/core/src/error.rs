//! Pipeline errors.

use cocoon_llm::LlmError;
use cocoon_sql::SqlError;
use cocoon_table::TableError;
use std::fmt;

/// Errors surfaced by the cleaning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Error from the table substrate.
    Table(TableError),
    /// Error from SQL generation or execution.
    Sql(SqlError),
    /// Error from the model client.
    Llm(LlmError),
    /// A configuration value is out of range.
    Config(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Table(e) => write!(f, "table: {e}"),
            CoreError::Sql(e) => write!(f, "sql: {e}"),
            CoreError::Llm(e) => write!(f, "llm: {e}"),
            CoreError::Config(msg) => write!(f, "config: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TableError> for CoreError {
    fn from(e: TableError) -> Self {
        CoreError::Table(e)
    }
}

impl From<SqlError> for CoreError {
    fn from(e: SqlError) -> Self {
        CoreError::Sql(e)
    }
}

impl From<LlmError> for CoreError {
    fn from(e: LlmError) -> Self {
        CoreError::Llm(e)
    }
}

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = TableError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("table:"));
        let e: CoreError = SqlError::DivisionByZero.into();
        assert!(e.to_string().contains("sql:"));
        let e: CoreError = LlmError::Empty.into();
        assert!(e.to_string().contains("llm:"));
        assert!(CoreError::Config("bad".into()).to_string().contains("bad"));
    }
}
