//! # cocoon-core
//!
//! The paper's primary contribution: the Cocoon data-cleaning pipeline
//! ("Data Cleaning Using Large Language Models", ICDE 2025).
//!
//! Cocoon decomposes cleaning along two dimensions (Figure 1): by issue
//! type — [string outliers](issues::string_outlier),
//! [pattern outliers](issues::pattern_outlier),
//! [disguised missing values](issues::dmv),
//! [column types](issues::column_type),
//! [numeric outliers](issues::numeric_outlier),
//! [functional dependencies](issues::functional_dependency),
//! [duplication](issues::duplication) and
//! [uniqueness](issues::uniqueness) — and, within each issue, into
//! statistical detection (via `cocoon-profile`), semantic detection and
//! semantic cleaning (LLM prompts via `cocoon-llm`), compiled to SQL (via
//! `cocoon-sql`).
//!
//! ```
//! use cocoon_core::Cleaner;
//! use cocoon_llm::SimLlm;
//! use cocoon_table::csv;
//!
//! let dirty =
//!     csv::read_str("id,article_language\n1,eng\n2,eng\n3,eng\n4,English\n").unwrap();
//! let run = Cleaner::new(SimLlm::new()).clean(&dirty).unwrap();
//! assert_eq!(run.table.render_cell(3, 1).unwrap(), "eng");
//! println!("{}", run.sql_script()); // the commented SQL artifact
//! ```

#![warn(missing_docs)]

pub mod apply;
pub mod config;
pub mod decision;
pub mod error;
pub mod issues;
pub mod ops;
pub mod pipeline;
pub mod progress;
pub mod report;
pub mod state;

pub use apply::{apply_and_count, column_rewrite_select};
pub use cocoon_profile::{ProfileOptions, TableProfile};
pub use config::{CleanerConfig, IssueToggles};
pub use decision::{
    AutoApprove, CleaningReview, Decision, DecisionHook, DetectionReview, RecordingHook,
    RejectIssues,
};
pub use error::{CoreError, Result};
pub use ops::{CleaningOp, Confidence, IssueKind, DEFAULT_SELF_REPORT};
pub use pipeline::{Cleaner, CleaningRun, STAGE_ORDER};
pub use progress::{ProgressSnapshot, RunProgress, StageObserver, StageTiming};
pub use report::{full_report, issue_summary, workflow_trace};
pub use state::{DetectCtx, PipelineState};
