//! Shared machinery for compiling and applying column rewrites.

use crate::error::Result;
use cocoon_sql::{execute, Expr, Projection, Select};
use cocoon_table::{Table, Value};

/// Builds the `SELECT` that rewrites exactly one column with `expr`
/// (all other columns pass through unchanged).
pub fn column_rewrite_select(table: &Table, column: &str, expr: Expr) -> Select {
    let projections = table
        .schema()
        .fields()
        .iter()
        .map(|field| {
            if field.name() == column {
                Projection::aliased(expr.clone(), field.name())
            } else {
                Projection::Expr { expr: Expr::col(field.name()), alias: None }
            }
        })
        .collect();
    Select {
        distinct: false,
        projections,
        from: "input".into(),
        where_clause: None,
        qualify: None,
        comment: None,
    }
}

/// Executes a select against `table` and counts cell-level differences
/// (only meaningful when the row count is unchanged).
pub fn apply_and_count(select: &Select, table: &Table) -> Result<(Table, usize)> {
    let output = execute(select, table)?;
    let mut changed = 0usize;
    if output.height() == table.height() && output.width() == table.width() {
        for c in 0..table.width() {
            let before = table.column(c)?.values();
            let after = output.column(c)?.values();
            changed += before.iter().zip(after).filter(|(b, a)| b != a).count();
        }
    } else {
        changed = table.height().saturating_sub(output.height());
    }
    Ok((output, changed))
}

/// Converts a textual cleaning mapping into `(Value, Value)` pairs; an
/// empty new value means NULL (the Figure 3 convention for "meaningless").
pub fn mapping_to_values(mapping: &[(String, String)]) -> Vec<(Value, Value)> {
    mapping
        .iter()
        .map(|(old, new)| {
            let new_value = if new.is_empty() { Value::Null } else { Value::Text(new.clone()) };
            (Value::Text(old.clone()), new_value)
        })
        .collect()
}

/// Restricts a mapping to entries whose old value actually occurs in the
/// census, preserving order and dropping identity entries.
pub fn restrict_mapping(
    mapping: &[(String, String)],
    census: &[(String, usize)],
) -> Vec<(String, String)> {
    mapping
        .iter()
        .filter(|(old, new)| old != new && census.iter().any(|(v, _)| v == old))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let rows: Vec<Vec<String>> =
            vec![vec!["1".into(), "English".into()], vec!["2".into(), "eng".into()]];
        Table::from_text_rows(&["id", "lang"], &rows).unwrap()
    }

    #[test]
    fn rewrite_replaces_one_column() {
        let t = table();
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        let select = column_rewrite_select(&t, "lang", map);
        let (out, changed) = apply_and_count(&select, &t).unwrap();
        assert_eq!(changed, 1);
        assert_eq!(out.cell(0, 1).unwrap(), &Value::from("eng"));
        assert_eq!(out.cell(0, 0).unwrap(), &Value::from("1"));
        assert_eq!(out.schema().names(), vec!["id", "lang"]);
    }

    #[test]
    fn mapping_to_values_handles_null() {
        let pairs = mapping_to_values(&[("N/A".into(), String::new()), ("a".into(), "b".into())]);
        assert_eq!(pairs[0].1, Value::Null);
        assert_eq!(pairs[1].1, Value::from("b"));
    }

    #[test]
    fn restrict_mapping_filters() {
        let census = vec![("a".to_string(), 2), ("b".to_string(), 1)];
        let mapping = vec![
            ("a".to_string(), "x".to_string()),
            ("zz".to_string(), "y".to_string()),
            ("b".to_string(), "b".to_string()),
        ];
        assert_eq!(restrict_mapping(&mapping, &census), vec![("a".to_string(), "x".to_string())]);
    }

    #[test]
    fn row_dropping_counts_rows() {
        let t = table();
        let mut select = Select::star("input");
        select.where_clause = Some(Expr::eq(Expr::col("id"), Expr::lit("1")));
        let (out, changed) = apply_and_count(&select, &t).unwrap();
        assert_eq!(out.height(), 1);
        assert_eq!(changed, 1);
    }
}
