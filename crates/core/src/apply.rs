//! Shared machinery for compiling and applying column rewrites.

use crate::error::Result;
use cocoon_sql::{eval_column, execute, infer_expr_type, Expr, Projection, Select, Selection};
use cocoon_table::{Column, Table, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Builds the `SELECT` that rewrites exactly one column with `expr`
/// (all other columns pass through unchanged).
pub fn column_rewrite_select(table: &Table, column: &str, expr: Expr) -> Select {
    let projections = table
        .schema()
        .fields()
        .iter()
        .map(|field| {
            if field.name() == column {
                Projection::aliased(expr.clone(), field.name())
            } else {
                Projection::Expr { expr: Expr::col(field.name()), alias: None }
            }
        })
        .collect();
    Select {
        distinct: false,
        projections,
        from: "input".into(),
        where_clause: None,
        qualify: None,
        comment: None,
    }
}

/// Executes a select against `table` and counts cell-level differences
/// (only meaningful when the row count is unchanged).
///
/// Selects with the [`column_rewrite_select`] shape take a fast path:
/// only the target column is evaluated and diffed, and every other column
/// of the output shares the input's storage.
pub fn apply_and_count(select: &Select, table: &Table) -> Result<(Table, usize)> {
    if let Some((index, expr)) = single_column_rewrite(select, table) {
        let rewritten = if table.height() == 0 {
            Column::default()
        } else {
            eval_column(expr, table, &Selection::All(table.height()))?
        };
        let before = table.column(index)?;
        let changed =
            before.values().iter().zip(rewritten.values()).filter(|(b, a)| b != a).count();
        let mut output = table.clone();
        output.replace_column(index, Arc::new(rewritten))?;
        output.set_column_type(index, infer_expr_type(expr, table.schema()))?;
        return Ok((output, changed));
    }

    let output = execute(select, table)?;
    let mut changed = 0usize;
    if output.height() == table.height() && output.width() == table.width() {
        for c in 0..table.width() {
            // Physically shared columns cannot differ.
            if Arc::ptr_eq(table.shared_column(c)?, output.shared_column(c)?) {
                continue;
            }
            let before = table.column(c)?.values();
            let after = output.column(c)?.values();
            changed += before.iter().zip(after).filter(|(b, a)| b != a).count();
        }
    } else {
        changed = table.height().saturating_sub(output.height());
    }
    Ok((output, changed))
}

/// Recognises the [`column_rewrite_select`] shape: no filters, one
/// projection per input column in schema order, all of them pass-through
/// column references except exactly one expression aliased back to its
/// field's name. Returns the target column index and expression.
fn single_column_rewrite<'a>(select: &'a Select, table: &Table) -> Option<(usize, &'a Expr)> {
    if select.distinct || select.where_clause.is_some() || select.qualify.is_some() {
        return None;
    }
    let schema = table.schema();
    if select.projections.len() != schema.len() {
        return None;
    }
    let mut target: Option<(usize, &Expr)> = None;
    for (i, projection) in select.projections.iter().enumerate() {
        let Projection::Expr { expr, alias } = projection else { return None };
        let field_name = schema.field(i).ok()?.name();
        if let Expr::Column(name) = expr {
            let out_name = alias.as_deref().unwrap_or(name);
            if name == field_name && out_name == field_name {
                continue; // pass-through
            }
        }
        if alias.as_deref() != Some(field_name) || target.is_some() {
            return None;
        }
        target = Some((i, expr));
    }
    target
}

/// Converts a textual cleaning mapping into `(Value, Value)` pairs; an
/// empty new value means NULL (the Figure 3 convention for "meaningless").
pub fn mapping_to_values(mapping: &[(String, String)]) -> Vec<(Value, Value)> {
    mapping
        .iter()
        .map(|(old, new)| {
            let new_value = if new.is_empty() { Value::Null } else { Value::Text(new.clone()) };
            (Value::Text(old.clone()), new_value)
        })
        .collect()
}

/// Restricts a mapping to entries whose old value actually occurs in the
/// census, preserving order and dropping identity entries.
pub fn restrict_mapping(
    mapping: &[(String, String)],
    census: &[(String, usize)],
) -> Vec<(String, String)> {
    let present: HashSet<&str> = census.iter().map(|(v, _)| v.as_str()).collect();
    mapping
        .iter()
        .filter(|(old, new)| old != new && present.contains(old.as_str()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let rows: Vec<Vec<String>> =
            vec![vec!["1".into(), "English".into()], vec!["2".into(), "eng".into()]];
        Table::from_text_rows(&["id", "lang"], &rows).unwrap()
    }

    #[test]
    fn rewrite_replaces_one_column() {
        let t = table();
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        let select = column_rewrite_select(&t, "lang", map);
        let (out, changed) = apply_and_count(&select, &t).unwrap();
        assert_eq!(changed, 1);
        assert_eq!(out.cell(0, 1).unwrap(), &Value::from("eng"));
        assert_eq!(out.cell(0, 0).unwrap(), &Value::from("1"));
        assert_eq!(out.schema().names(), vec!["id", "lang"]);
    }

    #[test]
    fn rewrite_shares_untouched_columns() {
        let t = table();
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        let select = column_rewrite_select(&t, "lang", map);
        let (out, _) = apply_and_count(&select, &t).unwrap();
        // The id column must be the very same allocation, not a copy.
        assert!(Arc::ptr_eq(t.shared_column(0).unwrap(), out.shared_column(0).unwrap()));
        assert!(!Arc::ptr_eq(t.shared_column(1).unwrap(), out.shared_column(1).unwrap()));
    }

    #[test]
    fn fast_path_matches_generic_executor() {
        let t = table();
        let cast = Expr::try_cast(Expr::col("id"), cocoon_table::DataType::Int);
        let select = column_rewrite_select(&t, "id", cast);
        assert!(single_column_rewrite(&select, &t).is_some());
        let (fast, fast_changed) = apply_and_count(&select, &t).unwrap();
        let generic = execute(&select, &t).unwrap();
        assert_eq!(fast, generic);
        assert_eq!(fast_changed, 2); // "1" → 1, "2" → 2
                                     // Declared type follows the cast, as in the generic path.
        assert_eq!(fast.schema().field(0).unwrap().data_type(), cocoon_table::DataType::Int);
    }

    #[test]
    fn non_rewrite_shapes_skip_the_fast_path() {
        let t = table();
        // DISTINCT, WHERE, star and column-subset selects are not rewrites.
        let mut distinct = Select::star("input");
        distinct.distinct = true;
        assert!(single_column_rewrite(&distinct, &t).is_none());
        let mut filtered = column_rewrite_select(&t, "lang", Expr::lit("x"));
        filtered.where_clause = Some(Expr::eq(Expr::col("id"), Expr::lit("1")));
        assert!(single_column_rewrite(&filtered, &t).is_none());
        let subset = Select {
            distinct: false,
            projections: vec![Projection::Expr { expr: Expr::col("id"), alias: None }],
            from: "input".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        assert!(single_column_rewrite(&subset, &t).is_none());
        // Two rewritten columns: also generic.
        let two = Select {
            distinct: false,
            projections: vec![
                Projection::aliased(Expr::lit("x"), "id"),
                Projection::aliased(Expr::lit("y"), "lang"),
            ],
            from: "input".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        assert!(single_column_rewrite(&two, &t).is_none());
    }

    #[test]
    fn mapping_to_values_handles_null() {
        let pairs = mapping_to_values(&[("N/A".into(), String::new()), ("a".into(), "b".into())]);
        assert_eq!(pairs[0].1, Value::Null);
        assert_eq!(pairs[1].1, Value::from("b"));
    }

    #[test]
    fn restrict_mapping_filters() {
        let census = vec![("a".to_string(), 2), ("b".to_string(), 1)];
        let mapping = vec![
            ("a".to_string(), "x".to_string()),
            ("zz".to_string(), "y".to_string()),
            ("b".to_string(), "b".to_string()),
        ];
        assert_eq!(restrict_mapping(&mapping, &census), vec![("a".to_string(), "x".to_string())]);
    }

    #[test]
    fn row_dropping_counts_rows() {
        let t = table();
        let mut select = Select::star("input");
        select.where_clause = Some(Expr::eq(Expr::col("id"), Expr::lit("1")));
        let (out, changed) = apply_and_count(&select, &t).unwrap();
        assert_eq!(out.height(), 1);
        assert_eq!(changed, 1);
    }
}
