//! The Cocoon cleaning pipeline.
//!
//! Figure 1 of the paper: cleaning is decomposed (a) by issue type and (b),
//! within each issue, into statistical detection → semantic detection →
//! semantic cleaning. The order follows the §2.1 note: per-column issues
//! run string outliers → pattern outliers → DMV → column type → numeric
//! outliers (typos must be fixed before patterns can be read, patterns
//! before casts, casts before numeric distributions); whole-table issues
//! run afterwards: functional dependencies → duplication → uniqueness.
//!
//! Stages execute in that fixed order, but inside each stage detection is
//! a concurrent fan-out across columns (the paper's hosted deployment
//! issues per-issue prompts concurrently); decisions and applies stay
//! sequential, so with a prompt-deterministic model a [`CleaningRun`] is
//! byte-identical at any thread count ([`CleanerConfig::threads`] spells
//! out the precondition). See [`crate::state`] for the detect/decide model
//! and [`CleanerConfig::threads`] / `COCOON_THREADS` for the worker policy.

use crate::config::CleanerConfig;
use crate::decision::{AutoApprove, DecisionHook};
use crate::error::Result;
use crate::issues;
use crate::ops::{CleaningOp, IssueKind};
use crate::progress::RunProgress;
use crate::state::PipelineState;
use cocoon_llm::ChatModel;
use cocoon_profile::{profile_table_chunked, TableProfile, DEFAULT_PROFILE_CHUNK_ROWS};
use cocoon_table::Table;

/// The stages of the pipeline, in execution order (Figure 1a).
pub const STAGE_ORDER: [IssueKind; 8] = [
    IssueKind::StringOutliers,
    IssueKind::PatternOutliers,
    IssueKind::DisguisedMissing,
    IssueKind::ColumnType,
    IssueKind::NumericOutliers,
    IssueKind::FunctionalDependency,
    IssueKind::Duplication,
    IssueKind::Uniqueness,
];

/// The result of cleaning one table.
#[derive(Debug, Clone)]
pub struct CleaningRun {
    /// The cleaned table.
    pub table: Table,
    /// Applied operations, in order.
    pub ops: Vec<CleaningOp>,
    /// Repairs withheld by the confidence threshold policy
    /// ([`CleanerConfig::confidence_threshold`]): compiled, scored, but not
    /// applied — awaiting human review. Empty at the default threshold 0.0.
    pub pending: Vec<CleaningOp>,
    /// Narrative notes (rejected FDs, degraded steps, reviewer decisions).
    pub notes: Vec<String>,
}

impl CleaningRun {
    /// Total cells changed (including rows dropped, counted as one each).
    pub fn total_changes(&self) -> usize {
        self.ops.iter().map(|op| op.cells_changed).sum()
    }

    /// Ops of one issue kind.
    pub fn ops_for(&self, issue: IssueKind) -> Vec<&CleaningOp> {
        self.ops.iter().filter(|op| op.issue == issue).collect()
    }

    /// The full SQL script: every op's commented SQL, in order — the
    /// paper's final output artifact (Figure 5).
    pub fn sql_script(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("-- step {} --------------------------------\n", i + 1));
            out.push_str(&op.rendered_sql());
            out.push_str(";\n\n");
        }
        out
    }
}

/// The Cocoon cleaner: an LLM plus a configuration.
///
/// ```
/// use cocoon_core::Cleaner;
/// use cocoon_llm::SimLlm;
/// use cocoon_table::csv;
///
/// let dirty =
///     csv::read_str("id,lang\n1,eng\n2,eng\n3,eng\n4,English\n").unwrap();
/// let run = Cleaner::new(SimLlm::new()).clean(&dirty).unwrap();
/// assert_eq!(run.table.render_cell(3, 1).unwrap(), "eng");
/// ```
pub struct Cleaner<M> {
    llm: M,
    config: CleanerConfig,
}

impl<M: ChatModel> Cleaner<M> {
    /// A cleaner with the paper's default configuration.
    pub fn new(llm: M) -> Self {
        Cleaner { llm, config: CleanerConfig::default() }
    }

    /// A cleaner with a custom configuration.
    pub fn with_config(llm: M, config: CleanerConfig) -> Result<Self> {
        Ok(Cleaner { llm, config: config.validated()? })
    }

    /// The validated configuration this cleaner runs with.
    pub fn config(&self) -> &CleanerConfig {
        &self.config
    }

    /// The underlying model (e.g. to read a transcript).
    pub fn llm(&self) -> &M {
        &self.llm
    }

    /// Cleans a table with every step auto-approved — the paper's benchmark
    /// mode ("we skip \[HIL\] and use the LLM provided ground truth").
    pub fn clean(&self, table: &Table) -> Result<CleaningRun> {
        let mut hook = AutoApprove;
        self.clean_with_hook(table, &mut hook)
    }

    /// Cleans a table, consulting `hook` at every detection and cleaning
    /// decision (the HIL mode of §2.2 / Appendix A).
    pub fn clean_with_hook(
        &self,
        table: &Table,
        hook: &mut dyn DecisionHook,
    ) -> Result<CleaningRun> {
        self.clean_observed(table, hook, None)
    }

    /// Cleans with every step auto-approved, publishing stage-by-stage
    /// [`ProgressSnapshot`](crate::ProgressSnapshot)s to `progress` — the
    /// shape a polling service needs: the cleaning thread owns the run,
    /// observers share the `RunProgress`.
    pub fn clean_with_progress(
        &self,
        table: &Table,
        progress: &RunProgress,
    ) -> Result<CleaningRun> {
        let mut hook = AutoApprove;
        self.clean_observed(table, &mut hook, Some(progress))
    }

    /// Full-control variant: custom hook, optional progress observation.
    pub fn clean_observed(
        &self,
        table: &Table,
        hook: &mut dyn DecisionHook,
        progress: Option<&RunProgress>,
    ) -> Result<CleaningRun> {
        self.clean_seeded(table, hook, progress, None)
    }

    /// Cleans a table that was **already profiled** — the streaming-ingest
    /// path: `cocoon-server` accumulates a partial profile while a CSV
    /// body is still arriving and hands the finalised [`TableProfile`]
    /// here, so the run skips its whole-table profiling pass.
    ///
    /// The profile must describe `table` under this cleaner's
    /// [`CleanerConfig::profile_options`] ([`TableProfile::matches`] is the
    /// check); a stale or mismatched profile is discarded and recomputed,
    /// with a note in the run. Because a merged partial profile is
    /// bit-identical to the whole-table pass, the [`CleaningRun`] is
    /// byte-identical to [`clean`](Cleaner::clean) either way.
    pub fn clean_profiled(&self, table: &Table, profile: TableProfile) -> Result<CleaningRun> {
        let mut hook = AutoApprove;
        self.clean_seeded(table, &mut hook, None, Some(profile))
    }

    /// The fully general entry point: custom hook, optional progress
    /// observation, optional prebuilt entry profile (`seed`; see
    /// [`clean_profiled`](Cleaner::clean_profiled) for its contract). The
    /// other `clean_*` methods are conveniences over this.
    pub fn clean_seeded(
        &self,
        table: &Table,
        hook: &mut dyn DecisionHook,
        progress: Option<&RunProgress>,
        seed: Option<TableProfile>,
    ) -> Result<CleaningRun> {
        type StageFn = for<'a, 'b> fn(&'b mut PipelineState<'a>);
        let toggles = &self.config.issues;
        let stages: [(bool, IssueKind, StageFn); 8] = [
            (toggles.string_outliers, IssueKind::StringOutliers, issues::string_outlier::run),
            (toggles.pattern_outliers, IssueKind::PatternOutliers, issues::pattern_outlier::run),
            (toggles.disguised_missing, IssueKind::DisguisedMissing, issues::dmv::run),
            (toggles.column_type, IssueKind::ColumnType, issues::column_type::run),
            (toggles.numeric_outliers, IssueKind::NumericOutliers, issues::numeric_outlier::run),
            (
                toggles.functional_dependencies,
                IssueKind::FunctionalDependency,
                issues::functional_dependency::run,
            ),
            (toggles.duplication, IssueKind::Duplication, issues::duplication::run),
            (toggles.uniqueness, IssueKind::Uniqueness, issues::uniqueness::run),
        ];
        let mut state = PipelineState::new(table.clone(), &self.llm, &self.config, hook);
        state.progress = progress;
        // Profile the entry table once, chunk-parallel on the stage pool;
        // stages that need these statistics serve them from the profile
        // instead of re-deriving them, until the first applied op
        // invalidates the snapshot. Skipped when no enabled stage consumes
        // profiles (cheap ablation runs stay cheap).
        let wants_profile = toggles.pattern_outliers
            || toggles.column_type
            || toggles.numeric_outliers
            || toggles.functional_dependencies
            || toggles.duplication
            || toggles.uniqueness;
        if wants_profile {
            let options = self.config.profile_options();
            state.entry_profile = Some(match seed {
                Some(profile) if profile.matches(&state.table, &options) => profile,
                seed => {
                    if seed.is_some() {
                        state.note(
                            "supplied profile does not match the table or options; reprofiled",
                        );
                    }
                    profile_table_chunked(
                        &state.table,
                        &options,
                        &state.pool,
                        DEFAULT_PROFILE_CHUNK_ROWS,
                    )
                }
            });
        }
        if let Some(p) = progress {
            p.begin(stages.iter().filter(|(enabled, _, _)| *enabled).count());
        }
        for (enabled, kind, run) in stages {
            if !enabled {
                continue;
            }
            if let Some(p) = progress {
                p.start_stage(kind.name());
            }
            run(&mut state);
            if let Some(p) = progress {
                p.finish_stage(state.ops.len());
            }
        }
        if let Some(p) = progress {
            p.finish(state.ops.len());
        }
        Ok(CleaningRun {
            table: state.table,
            ops: state.ops,
            pending: state.pending,
            notes: state.notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoon_llm::{SimLlm, Transcript};
    use cocoon_table::{csv, DataType, Value};

    /// A small table exercising several issue types at once.
    fn messy() -> Table {
        let mut csv_text = String::from("record_id,lang,admission,EmergencyService,rating\n");
        for i in 0..20 {
            csv_text.push_str(&format!("r{i},eng,01/02/2003,yes,7.5\n"));
        }
        csv_text.push_str("r20,English,2003-04-05,no,8.0\n");
        csv_text.push_str("r21,eng,01/02/2003,N/A,99.0\n");
        csv::read_str(&csv_text).unwrap()
    }

    #[test]
    fn full_pipeline_fixes_multiple_issues() {
        let cleaner = Cleaner::new(SimLlm::new());
        let run = cleaner.clean(&messy()).unwrap();
        let kinds: Vec<IssueKind> = run.ops.iter().map(|o| o.issue).collect();
        assert!(kinds.contains(&IssueKind::StringOutliers), "{kinds:?}");
        assert!(kinds.contains(&IssueKind::PatternOutliers), "{kinds:?}");
        assert!(kinds.contains(&IssueKind::DisguisedMissing), "{kinds:?}");
        assert!(kinds.contains(&IssueKind::ColumnType), "{kinds:?}");
        assert!(kinds.contains(&IssueKind::NumericOutliers), "{kinds:?}");

        // lang standardised.
        assert_eq!(run.table.render_cell(20, 1).unwrap(), "eng");
        // date standardised (pattern step) then cast to DATE (type step):
        // the value parses as the real calendar date either way.
        assert_eq!(run.table.schema().field(2).unwrap().data_type(), DataType::Date);
        assert_eq!(
            run.table.cell(20, 2).unwrap(),
            &Value::Date(cocoon_table::Date::new(2003, 4, 5).unwrap())
        );
        // EmergencyService cast to boolean, DMV nulled.
        assert_eq!(run.table.schema().field(3).unwrap().data_type(), DataType::Bool);
        assert_eq!(run.table.cell(21, 3).unwrap(), &Value::Null);
        // rating outlier nulled.
        assert_eq!(run.table.cell(21, 4).unwrap(), &Value::Null);
    }

    #[test]
    fn ops_render_to_sql_script() {
        let cleaner = Cleaner::new(SimLlm::new());
        let run = cleaner.clean(&messy()).unwrap();
        let script = run.sql_script();
        assert!(script.contains("-- step 1"));
        assert!(script.contains("CASE"));
        assert!(script.contains("TRY_CAST"));
        // Total change accounting is consistent.
        assert_eq!(run.total_changes(), run.ops.iter().map(|o| o.cells_changed).sum::<usize>());
    }

    #[test]
    fn stage_order_matches_paper() {
        assert_eq!(STAGE_ORDER[0], IssueKind::StringOutliers);
        assert_eq!(STAGE_ORDER[3], IssueKind::ColumnType);
        assert_eq!(STAGE_ORDER[7], IssueKind::Uniqueness);
    }

    #[test]
    fn toggles_disable_stages() {
        let config = CleanerConfig::only_issue("disguised_missing");
        let cleaner = Cleaner::with_config(SimLlm::new(), config).unwrap();
        let run = cleaner.clean(&messy()).unwrap();
        assert!(run.ops.iter().all(|o| o.issue == IssueKind::DisguisedMissing));
    }

    #[test]
    fn clean_table_is_a_fixpoint() {
        let cleaner = Cleaner::new(SimLlm::new());
        let once = cleaner.clean(&messy()).unwrap();
        let twice = cleaner.clean(&once.table).unwrap();
        // Cleaning an already-clean table must not change it further —
        // string/pattern/DMV issues are gone; types are preserved.
        assert_eq!(once.table, twice.table);
    }

    #[test]
    fn transcript_counts_llm_calls() {
        let cleaner = Cleaner::new(Transcript::new(SimLlm::new()));
        let run = cleaner.clean(&messy()).unwrap();
        assert!(cleaner.llm().call_count() > 5);
        assert!(cleaner.llm().total_usage().total() > 100);
        assert!(!run.ops.is_empty());
    }

    #[test]
    fn progress_reports_enabled_stage_count_and_finishes() {
        let cleaner = Cleaner::new(SimLlm::new());
        let progress = RunProgress::new();
        let run = cleaner.clean_with_progress(&messy(), &progress).unwrap();
        let snap = progress.snapshot();
        assert!(snap.finished);
        assert_eq!(snap.total_stages, 8);
        assert_eq!(snap.completed_stages, 8);
        assert_eq!(snap.current_stage, None);
        assert_eq!(snap.ops_applied, run.ops.len());
        // Progress observation is invisible in the run itself.
        let plain = cleaner.clean(&messy()).unwrap();
        assert_eq!(run.table, plain.table);
        assert_eq!(run.sql_script(), plain.sql_script());
    }

    #[test]
    fn stage_observer_times_every_enabled_stage() {
        use crate::progress::{StageObserver, StageTiming};
        use std::sync::{Arc, Mutex};
        struct Collect(Mutex<Vec<StageTiming>>);
        impl StageObserver for Collect {
            fn stage_finished(&self, timing: StageTiming) {
                self.0.lock().unwrap().push(timing);
            }
        }
        let cleaner = Cleaner::new(SimLlm::new());
        let collect = Arc::new(Collect(Mutex::new(Vec::new())));
        let progress = RunProgress::new();
        progress.set_observer(collect.clone());
        let run = cleaner.clean_with_progress(&messy(), &progress).unwrap();
        let events = collect.0.lock().unwrap().clone();
        // One event per enabled stage, in pipeline order, detect ≤ total,
        // and the final cumulative op count matches the run.
        let names: Vec<&str> = events.iter().map(|e| e.stage).collect();
        let expected: Vec<&str> = STAGE_ORDER.iter().map(|k| k.name()).collect();
        assert_eq!(names, expected);
        assert!(events.iter().all(|e| e.detect <= e.total));
        assert_eq!(events.last().unwrap().ops_applied, run.ops.len());
        // Observation stays invisible in the run output.
        let plain = cleaner.clean(&messy()).unwrap();
        assert_eq!(run.table, plain.table);
    }

    #[test]
    fn progress_counts_only_enabled_stages() {
        let config = CleanerConfig::only_issue("disguised_missing");
        let cleaner = Cleaner::with_config(SimLlm::new(), config).unwrap();
        let progress = RunProgress::new();
        cleaner.clean_with_progress(&messy(), &progress).unwrap();
        let snap = progress.snapshot();
        assert_eq!((snap.total_stages, snap.completed_stages), (1, 1));
    }

    #[test]
    fn profiled_clean_matches_plain_clean() {
        let cleaner = Cleaner::new(SimLlm::new());
        let table = messy();
        let profile = cocoon_profile::profile_table(&table, &cleaner.config().profile_options());
        let seeded = cleaner.clean_profiled(&table, profile).unwrap();
        let plain = cleaner.clean(&table).unwrap();
        assert_eq!(seeded.table, plain.table);
        assert_eq!(seeded.sql_script(), plain.sql_script());
        assert_eq!(seeded.notes, plain.notes);
    }

    #[test]
    fn stale_profile_is_recomputed_with_a_note() {
        let cleaner = Cleaner::new(SimLlm::new());
        let table = messy();
        let other = csv::read_str("a\n1\n").unwrap();
        let stale = cocoon_profile::profile_table(&other, &cleaner.config().profile_options());
        let run = cleaner.clean_profiled(&table, stale).unwrap();
        let plain = cleaner.clean(&table).unwrap();
        assert_eq!(run.table, plain.table);
        assert_eq!(run.sql_script(), plain.sql_script());
        assert!(run.notes.iter().any(|n| n.contains("reprofiled")));
    }

    #[test]
    fn confidence_threshold_withholds_low_confidence_repairs() {
        // Two text columns: a typo (self-report 0.95, applies) and a
        // misplaced concept token (self-report 0.65, withheld at 0.9).
        let mut text = String::from("drink,country\n");
        for _ in 0..50 {
            text.push_str("coffee,USA\n");
        }
        for _ in 0..10 {
            text.push_str("tea,India\n");
        }
        text.push_str("cofffee,Hindi\n");
        let table = csv::read_str(&text).unwrap();

        let strict = CleanerConfig {
            confidence_threshold: 0.9,
            ..CleanerConfig::only_issue("string_outliers")
        };
        let withheld = Cleaner::with_config(SimLlm::new(), strict).unwrap().clean(&table).unwrap();
        assert_eq!(withheld.ops.len(), 1, "typo repair applies");
        assert_eq!(withheld.pending.len(), 1, "misplaced repair withheld");
        assert_eq!(withheld.pending[0].column.as_deref(), Some("country"));
        assert!(withheld.pending[0].confidence.score() < 0.9);
        // The withheld column is untouched…
        assert_eq!(withheld.table.render_cell(60, 1).unwrap(), "Hindi");
        // …while the applied one is repaired, and the run says why.
        assert_eq!(withheld.table.render_cell(60, 0).unwrap(), "coffee");
        assert!(withheld.notes.iter().any(|n| n.contains("withheld for review")));

        // Accepting the pending repair afterwards reaches the same table as
        // an unconditional (threshold 0.0) run — the review queue only
        // defers work, it never changes it.
        let lenient = CleanerConfig {
            confidence_threshold: 0.0,
            ..CleanerConfig::only_issue("string_outliers")
        };
        let full = Cleaner::with_config(SimLlm::new(), lenient).unwrap().clean(&table).unwrap();
        assert!(full.pending.is_empty());
        let (accepted, _) =
            crate::apply::apply_and_count(&withheld.pending[0].sql, &withheld.table).unwrap();
        assert_eq!(accepted, full.table);
    }

    #[test]
    fn default_threshold_is_observational() {
        // Threshold 0.0 (the default): every op carries a confidence, none
        // are withheld, and the run behaves exactly as before the policy.
        let run = Cleaner::new(SimLlm::new()).clean(&messy()).unwrap();
        assert!(run.pending.is_empty());
        assert!(!run.ops.is_empty());
        for op in &run.ops {
            let score = op.confidence.score();
            assert!((0.0..=1.0).contains(&score), "{score}");
            assert!(op.rendered_sql().contains("confidence: "), "{}", op.rendered_sql());
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let config = CleanerConfig { fd_min_strength: 7.0, ..CleanerConfig::default() };
        assert!(Cleaner::with_config(SimLlm::new(), config).is_err());
    }
}
