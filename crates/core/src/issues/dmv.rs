//! §2.1.3 Disguised Missing Values.
//!
//! Statistical detection shows the column's values; the LLM identifies
//! not-NULL values that semantically mean "missing" ("N/A", "null", "-");
//! cleaning is `CASE WHEN … THEN NULL`.
//!
//! Detect phase (concurrent, per text column): census → DMV prompt → token
//! filter. Decide phase (sequential): cleaning review → SQL compile → apply.

use crate::apply::{apply_and_count, column_rewrite_select, mapping_to_values};
use crate::decision::{CleaningReview, Decision};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_dmv_verdict, prompts};
use cocoon_sql::{render_select, Expr};
use cocoon_table::DataType;

struct Finding {
    column: String,
    evidence: String,
    reasoning: String,
    /// token → "" (the Figure 3 convention: empty new value means NULL).
    mapping: Vec<(String, String)>,
    confidence: Option<f64>,
}

fn degraded(column: &str, err: &crate::error::CoreError) -> String {
    format!("DMV detection on {column:?} degraded to statistical-only: {err}")
}

/// Runs DMV detection and cleaning over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    let outcomes = state.detect_columns(detect_column);
    state.decide_outcomes(outcomes, decide, |finding, err| degraded(&finding.column, err));
}

fn detect_column(ctx: &DetectCtx<'_>, index: usize) -> Outcome<Finding> {
    let Ok(field) = ctx.table.schema().field(index) else { return Outcome::Clean };
    if field.data_type() != DataType::Text {
        return Outcome::Clean;
    }
    let column = field.name().to_string();
    match detect_inner(ctx, index, &column) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&column, &err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<Outcome<Finding>> {
    let census = ctx.census(index, ctx.config.sample_size);
    if census.is_empty() {
        return Ok(Outcome::Clean);
    }
    // Numeric share guides whether sentinel values (9999, -1) count as DMVs.
    let total: usize = census.iter().map(|(_, c)| c).sum();
    let numeric: usize =
        census.iter().filter(|(v, _)| v.trim().parse::<f64>().is_ok()).map(|(_, c)| c).sum();
    let numeric_share = if total == 0 { 0.0 } else { numeric as f64 / total as f64 };

    let response = ctx.ask(prompts::dmv_detect(column, &census, numeric_share))?;
    let verdict = parse_dmv_verdict(&response)?;
    let tokens: Vec<String> =
        verdict.tokens.into_iter().filter(|t| census.iter().any(|(v, _)| v == t)).collect();
    if tokens.is_empty() {
        return Ok(Outcome::Clean);
    }

    let mapping: Vec<(String, String)> =
        tokens.iter().map(|t| (t.clone(), String::new())).collect();
    let evidence =
        format!("{} distinct values reviewed; numeric share {numeric_share:.2}", census.len());
    Ok(Outcome::Finding(Finding {
        column: column.to_string(),
        evidence,
        reasoning: verdict.reasoning,
        mapping,
        confidence: verdict.confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let column = finding.column.as_str();
    let expr = Expr::value_map(column, &mapping_to_values(&finding.mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let preview = render_select(&select);
    let review = CleaningReview {
        issue: IssueKind::DisguisedMissing,
        column: Some(column),
        llm_explanation: &finding.reasoning,
        mapping: &finding.mapping,
        sql_preview: &preview,
    };
    let mapping = match state.hook.review_cleaning(&review) {
        Decision::Reject => {
            state.note(format!("DMV cleaning on {column:?} rejected by reviewer"));
            return Ok(());
        }
        Decision::AdjustMapping(adjusted) => adjusted,
        Decision::Approve => finding.mapping.clone(),
    };
    let expr = Expr::value_map(column, &mapping_to_values(&mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::DisguisedMissing,
            column: Some(column.to_string()),
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: finding.reasoning.clone(),
            sql: select,
            cells_changed: changed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{Table, Value};

    fn with_dmvs() -> Table {
        let rows: Vec<Vec<String>> = vec![
            vec!["Austin".into()],
            vec!["N/A".into()],
            vec!["Dallas".into()],
            vec!["null".into()],
            vec!["-".into()],
        ];
        Table::from_text_rows(&["city"], &rows).unwrap()
    }

    #[test]
    fn dmvs_become_null() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(with_dmvs(), &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.ops[0].cells_changed, 3);
        assert_eq!(state.table.cell(1, 0).unwrap(), &Value::Null);
        assert_eq!(state.table.cell(3, 0).unwrap(), &Value::Null);
        assert_eq!(state.table.cell(4, 0).unwrap(), &Value::Null);
        assert_eq!(state.table.cell(0, 0).unwrap(), &Value::from("Austin"));
        assert!(state.ops[0].rendered_sql().contains("THEN NULL"));
    }

    #[test]
    fn sentinels_nulled_only_in_numeric_columns() {
        let rows: Vec<Vec<String>> = vec![
            vec!["10".into()],
            vec!["20".into()],
            vec!["30".into()],
            vec!["40".into()],
            vec!["9999".into()],
        ];
        let table = Table::from_text_rows(&["score"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.table.cell(4, 0).unwrap(), &Value::Null);
    }

    #[test]
    fn clean_column_untouched() {
        let rows: Vec<Vec<String>> = vec![vec!["Austin".into()], vec!["Dallas".into()]];
        let table = Table::from_text_rows(&["city"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table, table);
    }
}
