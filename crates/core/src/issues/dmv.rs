//! §2.1.3 Disguised Missing Values.
//!
//! Statistical detection shows the column's values; the LLM identifies
//! not-NULL values that semantically mean "missing" ("N/A", "null", "-");
//! cleaning is `CASE WHEN … THEN NULL`.

use crate::apply::{apply_and_count, column_rewrite_select, mapping_to_values};
use crate::decision::{CleaningReview, Decision};
use crate::ops::{CleaningOp, IssueKind};
use crate::state::PipelineState;
use cocoon_llm::{parse_dmv_verdict, prompts};
use cocoon_sql::{render_select, Expr};
use cocoon_table::DataType;

/// Runs DMV detection and cleaning over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    for index in 0..state.table.width() {
        let field = match state.table.schema().field(index) {
            Ok(f) => f.clone(),
            Err(_) => continue,
        };
        if field.data_type() != DataType::Text {
            continue;
        }
        if let Err(err) = run_column(state, index, field.name()) {
            state.note(format!(
                "DMV detection on {:?} degraded to statistical-only: {err}",
                field.name()
            ));
        }
    }
}

fn run_column(
    state: &mut PipelineState<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<()> {
    let census = state.census(index, state.config.sample_size);
    if census.is_empty() {
        return Ok(());
    }
    // Numeric share guides whether sentinel values (9999, -1) count as DMVs.
    let total: usize = census.iter().map(|(_, c)| c).sum();
    let numeric: usize =
        census.iter().filter(|(v, _)| v.trim().parse::<f64>().is_ok()).map(|(_, c)| c).sum();
    let numeric_share = if total == 0 { 0.0 } else { numeric as f64 / total as f64 };

    let response = state.ask(prompts::dmv_detect(column, &census, numeric_share))?;
    let verdict = parse_dmv_verdict(&response)?;
    let tokens: Vec<String> =
        verdict.tokens.into_iter().filter(|t| census.iter().any(|(v, _)| v == t)).collect();
    if tokens.is_empty() {
        return Ok(());
    }

    let mapping: Vec<(String, String)> =
        tokens.iter().map(|t| (t.clone(), String::new())).collect();
    let expr = Expr::value_map(column, &mapping_to_values(&mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let preview = render_select(&select);
    let evidence =
        format!("{} distinct values reviewed; numeric share {numeric_share:.2}", census.len());
    let review = CleaningReview {
        issue: IssueKind::DisguisedMissing,
        column: Some(column),
        llm_explanation: &verdict.reasoning,
        mapping: &mapping,
        sql_preview: &preview,
    };
    let mapping = match state.hook.review_cleaning(&review) {
        Decision::Reject => {
            state.note(format!("DMV cleaning on {column:?} rejected by reviewer"));
            return Ok(());
        }
        Decision::AdjustMapping(adjusted) => adjusted,
        Decision::Approve => mapping,
    };
    let expr = Expr::value_map(column, &mapping_to_values(&mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.table = table;
    state.ops.push(CleaningOp {
        issue: IssueKind::DisguisedMissing,
        column: Some(column.to_string()),
        statistical_evidence: evidence,
        llm_reasoning: verdict.reasoning,
        sql: select,
        cells_changed: changed,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{Table, Value};

    fn with_dmvs() -> Table {
        let rows: Vec<Vec<String>> = vec![
            vec!["Austin".into()],
            vec!["N/A".into()],
            vec!["Dallas".into()],
            vec!["null".into()],
            vec!["-".into()],
        ];
        Table::from_text_rows(&["city"], &rows).unwrap()
    }

    #[test]
    fn dmvs_become_null() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(with_dmvs(), &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.ops[0].cells_changed, 3);
        assert_eq!(state.table.cell(1, 0).unwrap(), &Value::Null);
        assert_eq!(state.table.cell(3, 0).unwrap(), &Value::Null);
        assert_eq!(state.table.cell(4, 0).unwrap(), &Value::Null);
        assert_eq!(state.table.cell(0, 0).unwrap(), &Value::from("Austin"));
        assert!(state.ops[0].rendered_sql().contains("THEN NULL"));
    }

    #[test]
    fn sentinels_nulled_only_in_numeric_columns() {
        let rows: Vec<Vec<String>> = vec![
            vec!["10".into()],
            vec!["20".into()],
            vec!["30".into()],
            vec!["40".into()],
            vec!["9999".into()],
        ];
        let table = Table::from_text_rows(&["score"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.table.cell(4, 0).unwrap(), &Value::Null);
    }

    #[test]
    fn clean_column_untouched() {
        let rows: Vec<Vec<String>> = vec![vec!["Austin".into()], vec!["Dallas".into()]];
        let table = Table::from_text_rows(&["city"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table, table);
    }
}
