//! §2.1.8 Column Uniqueness.
//!
//! Statistical detection computes per-column unique ratios; the LLM decides
//! whether a nearly-unique column should be unique semantically (a primary
//! key), and names a column that prioritises which record survives;
//! cleaning is a `ROW_NUMBER()` window filter.
//!
//! Detect phase (concurrent, per column): uniqueness profile → review
//! prompt. Decide phase (sequential): hook review → window filter → apply.
//! Dedup drops rows, so the filter is always applied against the live
//! table; a `removed == 0` apply (rows already gone) is a no-op.

use crate::apply::apply_and_count;
use crate::decision::{Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_unique_verdict, prompts};
use cocoon_profile::uniqueness_profile;
use cocoon_sql::{Expr, Projection, RowNumberFilter, Select, SortOrder};

struct Finding {
    column: String,
    evidence: String,
    reasoning: String,
    order_by: Option<String>,
    confidence: Option<f64>,
}

fn degraded(column: &str, err: &crate::error::CoreError) -> String {
    format!("uniqueness review on {column:?} degraded to statistical-only: {err}")
}

/// Runs uniqueness review over every nearly-unique column.
pub fn run(state: &mut PipelineState<'_>) {
    let outcomes = state.detect_columns(detect_column);
    state.decide_outcomes(outcomes, decide, |finding, err| degraded(&finding.column, err));
}

fn detect_column(ctx: &DetectCtx<'_>, index: usize) -> Outcome<Finding> {
    let Ok(field) = ctx.table.schema().field(index) else { return Outcome::Clean };
    let column = field.name().to_string();
    match detect_inner(ctx, index, &column) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&column, &err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<Outcome<Finding>> {
    let profile = match ctx.column_profile(index) {
        Some(entry) => entry.uniqueness.clone(),
        None => uniqueness_profile(ctx.table.column(index)?),
    };
    // Only nearly-unique-but-not-unique columns are worth reviewing: fully
    // unique columns need no repair, low-ratio columns aren't keys.
    if profile.unique_ratio < ctx.config.uniqueness_review_threshold
        || profile.duplicated_values.is_empty()
    {
        return Ok(Outcome::Clean);
    }
    let columns: Vec<String> = ctx.table.schema().names().iter().map(|s| s.to_string()).collect();
    let response = ctx.ask(prompts::uniqueness_review(column, profile.unique_ratio, &columns))?;
    let verdict = parse_unique_verdict(&response)?;
    if !verdict.should_be_unique {
        return Ok(Outcome::Clean);
    }
    let evidence = format!(
        "unique ratio {:.4}; {} duplicated values",
        profile.unique_ratio,
        profile.duplicated_values.len()
    );
    Ok(Outcome::Finding(Finding {
        column: column.to_string(),
        evidence,
        reasoning: verdict.reasoning,
        order_by: verdict.order_by,
        confidence: verdict.confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let column = finding.column.as_str();
    let detection = DetectionReview {
        issue: IssueKind::Uniqueness,
        column: Some(column),
        statistical_evidence: &finding.evidence,
        llm_reasoning: &finding.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("uniqueness dedup on {column:?} rejected by reviewer"));
        return Ok(());
    }
    // Window: keep the best row per key, ordered by the LLM-chosen column
    // (latest first) when available, else the first row.
    let order_by = finding
        .order_by
        .as_deref()
        .filter(|c| state.table.schema().contains(c))
        .map(|c| vec![(Expr::col(c), SortOrder::Desc)])
        .unwrap_or_default();
    let select = Select {
        distinct: false,
        projections: vec![Projection::Star],
        from: "input".into(),
        where_clause: None,
        qualify: Some(RowNumberFilter { partition_by: vec![Expr::col(column)], order_by, keep: 1 }),
        comment: None,
    };
    let (table, removed) = apply_and_count(&select, &state.table)?;
    if removed == 0 {
        return Ok(());
    }
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::Uniqueness,
            column: Some(column.to_string()),
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: finding.reasoning.clone(),
            sql: select,
            cells_changed: removed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{Table, Value};

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops)
    }

    #[test]
    fn id_column_deduped_keeping_latest() {
        let mut rows: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("r{i}"), format!("2020-01-{:02}", (i % 28) + 1)])
            .collect();
        // One id appears twice; the later update must survive.
        rows.push(vec!["r5".into(), "2021-06-01".into()]);
        let table = Table::from_text_rows(&["record_id", "updated_at"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.height(), 30);
        // r5 keeps the 2021 row.
        let kept: Vec<String> =
            cleaned.rows().filter(|r| r[0] == Value::from("r5")).map(|r| r[1].render()).collect();
        assert_eq!(kept, vec!["2021-06-01".to_string()]);
        assert!(ops[0].rendered_sql().contains("QUALIFY ROW_NUMBER()"));
    }

    #[test]
    fn non_key_column_untouched() {
        // Nearly-unique but semantically not a key.
        let mut rows: Vec<Vec<String>> = (0..30).map(|i| vec![format!("city{i}")]).collect();
        rows.push(vec!["city5".into()]);
        let table = Table::from_text_rows(&["city"], &rows).unwrap();
        let (cleaned, ops) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
    }

    #[test]
    fn fully_unique_key_untouched() {
        let rows: Vec<Vec<String>> = (0..10).map(|i| vec![format!("id{i}")]).collect();
        let table = Table::from_text_rows(&["record_id"], &rows).unwrap();
        let (_, ops) = run_on(table);
        assert!(ops.is_empty());
    }
}
