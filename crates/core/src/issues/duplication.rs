//! §2.1.7 Duplication.
//!
//! Statistical detection finds exact duplicate rows; the LLM decides
//! whether they are semantically acceptable (coarse-grained logging) or
//! erroneous; cleaning is `SELECT DISTINCT`.
//!
//! The whole table is one detection unit, so the detect phase is a single
//! read-only task; the decide phase reviews and applies as usual.

use crate::apply::apply_and_count;
use crate::decision::{Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_dup_verdict, prompts};
use cocoon_profile::duplicate_profile;
use cocoon_sql::Select;

struct Finding {
    evidence: String,
    reasoning: String,
    confidence: Option<f64>,
}

/// Runs duplicate-row review over the whole table.
pub fn run(state: &mut PipelineState<'_>) {
    let outcome = detect(&state.detect_ctx());
    match outcome {
        Outcome::Clean => {}
        Outcome::Note(note) => state.note(note),
        Outcome::Finding(finding) => {
            if let Err(err) = decide(state, &finding) {
                state.note(format!("duplication review degraded to statistical-only: {err}"));
            }
        }
    }
}

fn detect(ctx: &DetectCtx<'_>) -> Outcome<Finding> {
    match detect_inner(ctx) {
        Ok(outcome) => outcome,
        Err(err) => {
            Outcome::Note(format!("duplication review degraded to statistical-only: {err}"))
        }
    }
}

fn detect_inner(ctx: &DetectCtx<'_>) -> crate::error::Result<Outcome<Finding>> {
    let profile = match ctx.profile {
        Some(entry) => entry.duplicates.clone(),
        None => duplicate_profile(ctx.table),
    };
    if profile.duplicate_rows == 0 {
        return Ok(Outcome::Clean);
    }
    let columns: Vec<String> = ctx.table.schema().names().iter().map(|s| s.to_string()).collect();
    let response =
        ctx.ask(prompts::duplication_review(profile.duplicate_rows, profile.rows, &columns))?;
    let verdict = parse_dup_verdict(&response)?;
    let evidence = format!(
        "{} of {} rows are exact duplicates ({} groups)",
        profile.duplicate_rows, profile.rows, profile.duplicated_groups
    );
    if verdict.acceptable {
        return Ok(Outcome::Note(format!(
            "duplicates kept as semantically acceptable: {}",
            verdict.reasoning
        )));
    }
    Ok(Outcome::Finding(Finding {
        evidence,
        reasoning: verdict.reasoning,
        confidence: verdict.confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let detection = DetectionReview {
        issue: IssueKind::Duplication,
        column: None,
        statistical_evidence: &finding.evidence,
        llm_reasoning: &finding.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note("duplicate removal rejected by reviewer".to_string());
        return Ok(());
    }
    let mut select = Select::star("input");
    select.distinct = true;
    let (table, removed) = apply_and_count(&select, &state.table)?;
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::Duplication,
            column: None,
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: finding.reasoning.clone(),
            sql: select,
            cells_changed: removed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::Table;

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>, Vec<String>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops, state.notes)
    }

    #[test]
    fn entity_duplicates_removed() {
        let rows: Vec<Vec<String>> = vec![
            vec!["1".into(), "a".into()],
            vec!["1".into(), "a".into()],
            vec!["2".into(), "b".into()],
        ];
        let table = Table::from_text_rows(&["id", "name"], &rows).unwrap();
        let (cleaned, ops, _) = run_on(table);
        assert_eq!(cleaned.height(), 2);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].cells_changed, 1);
        assert!(ops[0].rendered_sql().contains("SELECT DISTINCT"));
    }

    #[test]
    fn log_duplicates_kept() {
        let rows: Vec<Vec<String>> =
            vec![vec!["12:00".into(), "42".into()], vec!["12:00".into(), "42".into()]];
        let table = Table::from_text_rows(&["event_time", "reading"], &rows).unwrap();
        let (cleaned, ops, notes) = run_on(table.clone());
        assert_eq!(cleaned, table);
        assert!(ops.is_empty());
        assert!(notes.iter().any(|n| n.contains("acceptable")));
    }

    #[test]
    fn no_duplicates_no_llm_call() {
        use cocoon_llm::{ChatModel, Transcript};
        let rows: Vec<Vec<String>> = vec![vec!["1".into()], vec!["2".into()]];
        let table = Table::from_text_rows(&["id"], &rows).unwrap();
        let llm = Transcript::new(SimLlm::new());
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        let _ = llm.model_name();
        assert_eq!(llm.call_count(), 0);
        assert!(state.ops.is_empty());
    }
}
