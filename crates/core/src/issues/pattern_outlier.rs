//! §2.1.2 Pattern Outliers: inconsistent value shapes.
//!
//! Statistical detection groups a column's values by regex-shape digest;
//! the LLM reviews the shapes, proposes meaningful patterns (verified here
//! against the data, the paper's "verify them with SQL"), and supplies
//! regex transformations; cleaning compiles to nested `REGEXP_REPLACE`.
//!
//! Detect phase (concurrent, per text column): shape census → review prompt
//! → pattern verification. Decide phase (sequential): hook review → SQL
//! compile → apply.

use crate::apply::{apply_and_count, column_rewrite_select};
use crate::decision::{Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_pattern_plan, prompts};
use cocoon_pattern::Regex;
use cocoon_profile::pattern_census;
use cocoon_sql::Expr;
use cocoon_table::DataType;

struct Finding {
    column: String,
    evidence: String,
    reasoning: String,
    /// (pattern, replacement) pairs, all verified to compile.
    transforms: Vec<(String, String)>,
    confidence: Option<f64>,
}

fn degraded(column: &str, err: &crate::error::CoreError) -> String {
    format!("pattern outliers on {column:?} degraded to statistical-only: {err}")
}

/// Runs pattern-outlier detection and cleaning over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    let outcomes = state.detect_columns(detect_column);
    state.decide_outcomes(outcomes, decide, |finding, err| degraded(&finding.column, err));
}

fn detect_column(ctx: &DetectCtx<'_>, index: usize) -> Outcome<Finding> {
    let Ok(field) = ctx.table.schema().field(index) else { return Outcome::Clean };
    if field.data_type() != DataType::Text {
        return Outcome::Clean;
    }
    let column = field.name().to_string();
    match detect_inner(ctx, index, &column) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&column, &err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<Outcome<Finding>> {
    // The entry profile (built with exact pattern digests, per
    // `CleanerConfig::profile_options`) already holds this census.
    let census = match ctx.column_profile(index) {
        Some(profile) => profile.patterns.clone(),
        None => pattern_census(ctx.table.column(index)?, true),
    };
    if census.buckets.len() < 2 {
        return Ok(Outcome::Clean);
    }
    let buckets: Vec<(String, usize, Vec<String>)> = census
        .buckets
        .iter()
        .take(50)
        .map(|b| (b.pattern.clone(), b.count, b.examples.clone()))
        .collect();

    let response = ctx.ask(prompts::pattern_review(column, &buckets))?;
    let plan = parse_pattern_plan(&response)?;

    // Verify the proposed patterns against the data ("verify them with
    // SQL"): each must compile, and together they should cover most values.
    let compiled: Vec<Regex> = plan.patterns.iter().filter_map(|p| Regex::new(p).ok()).collect();
    let distinct = ctx.census(index, ctx.config.sample_size);
    let covered =
        distinct.iter().filter(|(v, _)| compiled.iter().any(|re| re.full_match(v))).count();
    let evidence = format!(
        "{} value shapes; {} proposed patterns cover {}/{} distinct values",
        census.buckets.len(),
        compiled.len(),
        covered,
        distinct.len()
    );

    if !plan.inconsistent || plan.transforms.is_empty() {
        return Ok(Outcome::Clean);
    }

    // Validate transforms compile before emitting SQL.
    let valid_transforms: Vec<(String, String)> =
        plan.transforms.iter().filter(|(p, _)| Regex::new(p).is_ok()).cloned().collect();
    if valid_transforms.is_empty() {
        return Ok(Outcome::Clean);
    }
    Ok(Outcome::Finding(Finding {
        column: column.to_string(),
        evidence,
        reasoning: plan.reasoning,
        transforms: valid_transforms,
        confidence: plan.confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let column = finding.column.as_str();
    let detection = DetectionReview {
        issue: IssueKind::PatternOutliers,
        column: Some(column),
        statistical_evidence: &finding.evidence,
        llm_reasoning: &finding.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("pattern outliers on {column:?} rejected by reviewer"));
        return Ok(());
    }

    // expr = REGEXP_REPLACE(…(REGEXP_REPLACE(col, p1, r1))…, pn, rn)
    let mut expr = Expr::col(column);
    for (pattern, replacement) in &finding.transforms {
        expr = Expr::func(
            "REGEXP_REPLACE",
            vec![expr, Expr::lit(pattern.as_str()), Expr::lit(replacement.as_str())],
        );
    }
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::PatternOutliers,
            column: Some(column.to_string()),
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: finding.reasoning.clone(),
            sql: select,
            cells_changed: changed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{Table, Value};

    fn mixed_dates() -> Table {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for _ in 0..20 {
            rows.push(vec!["01/02/2003".into()]);
        }
        for _ in 0..3 {
            rows.push(vec!["2003-04-05".into()]);
        }
        Table::from_text_rows(&["admission_date"], &rows).unwrap()
    }

    #[test]
    fn standardises_minority_date_format() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(mixed_dates(), &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        let op = &state.ops[0];
        assert_eq!(op.issue, IssueKind::PatternOutliers);
        assert_eq!(op.cells_changed, 3);
        // Every ISO date now follows the dominant slash form.
        assert_eq!(state.table.cell(20, 0).unwrap(), &Value::from("04/05/2003"));
        assert!(op.rendered_sql().contains("REGEXP_REPLACE"));
    }

    #[test]
    fn consistent_shapes_untouched() {
        let rows: Vec<Vec<String>> = (0..10).map(|i| vec![format!("0{i}/01/2000")]).collect();
        let table = Table::from_text_rows(&["d"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
    }

    #[test]
    fn non_date_shape_mix_not_rewritten() {
        // Codes of different lengths are not "inconsistent dates".
        let rows: Vec<Vec<String>> =
            vec![vec!["AB12".into()], vec!["XYZ999".into()], vec!["Q1".into()]];
        let table = Table::from_text_rows(&["code"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table, table);
    }
}
