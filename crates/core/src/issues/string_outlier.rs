//! §2.1.1 String Outliers: typos and inconsistent representations.
//!
//! Statistical detection samples the most frequent distinct values (default
//! 1000); semantic detection is the Figure 2 prompt; semantic cleaning is
//! the Figure 3 prompt, sent as one batch per column; the repair compiles to
//! a `CASE WHEN` value map.
//!
//! Detect phase (concurrent, per text column): census → detect prompt →
//! cleaning-map prompts, prefetched via
//! [`cocoon_llm::ChatModel::complete_batch`] so a batching backend amortises
//! them. Decide phase (sequential): hook reviews → SQL compile → apply.

use crate::apply::{apply_and_count, column_rewrite_select, mapping_to_values, restrict_mapping};
use crate::decision::{CleaningReview, Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::prompts;
use cocoon_llm::{parse_cleaning_map, parse_detect_verdict};
use cocoon_profile::batches;
use cocoon_sql::{render_select, Expr};
use cocoon_table::DataType;

/// A column flagged by detection, carrying everything the decide phase
/// needs: evidence, reasoning, and the prefetched cleaning map.
struct Finding {
    column: String,
    evidence: String,
    reasoning: String,
    explanations: Vec<String>,
    mapping: Vec<(String, String)>,
    /// Weakest self-reported confidence across the detect and clean
    /// completions, when any stated one.
    confidence: Option<f64>,
}

fn degraded(column: &str, err: &crate::error::CoreError) -> String {
    format!("string outliers on {column:?} degraded to statistical-only: {err}")
}

/// Runs string-outlier detection and cleaning over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    let outcomes = state.detect_columns(detect_column);
    state.decide_outcomes(outcomes, decide, |finding, err| degraded(&finding.column, err));
}

fn detect_column(ctx: &DetectCtx<'_>, index: usize) -> Outcome<Finding> {
    let Ok(field) = ctx.table.schema().field(index) else { return Outcome::Clean };
    if field.data_type() != DataType::Text {
        return Outcome::Clean;
    }
    let column = field.name().to_string();
    match detect_inner(ctx, index, &column) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&column, &err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<Outcome<Finding>> {
    let census = ctx.census(index, ctx.config.sample_size);
    if census.len() < 2 {
        return Ok(Outcome::Clean);
    }

    // Semantic detection (Figure 2).
    let response = ctx.ask(prompts::string_outliers_detect(column, &census))?;
    let verdict = parse_detect_verdict(&response)?;
    if !verdict.unusual {
        return Ok(Outcome::Clean);
    }
    let evidence = format!(
        "{} distinct values sampled by frequency (top {})",
        census.len(),
        ctx.config.sample_size
    );

    // Semantic cleaning (Figure 3): all value batches prefetched as one
    // model batch, so the decide phase needs no further completions.
    let value_batches = batches(&census, ctx.config.batch_size);
    let clean_prompts: Vec<String> = value_batches
        .iter()
        .map(|batch| prompts::string_outliers_clean(column, &verdict.summary, batch))
        .collect();
    let responses = ctx.ask_batch(clean_prompts);
    let mut mapping: Vec<(String, String)> = Vec::new();
    let mut explanations: Vec<String> = Vec::new();
    let mut confidence = verdict.confidence;
    for (batch, response) in value_batches.iter().zip(responses) {
        let map = parse_cleaning_map(&response?)?;
        if !map.explanation.is_empty() {
            explanations.push(map.explanation.clone());
        }
        confidence = match (confidence, map.confidence) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        mapping.extend(restrict_mapping(&map.mapping, batch));
    }
    if mapping.is_empty() {
        return Ok(Outcome::Clean);
    }
    Ok(Outcome::Finding(Finding {
        column: column.to_string(),
        evidence,
        reasoning: verdict.reasoning,
        explanations,
        mapping,
        confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let column = finding.column.as_str();
    let detection = DetectionReview {
        issue: IssueKind::StringOutliers,
        column: Some(column),
        statistical_evidence: &finding.evidence,
        llm_reasoning: &finding.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("string outliers on {column:?} rejected by reviewer"));
        return Ok(());
    }

    let expr = Expr::value_map(column, &mapping_to_values(&finding.mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let preview = render_select(&select);
    let explanation = finding.explanations.join(" ");
    let review = CleaningReview {
        issue: IssueKind::StringOutliers,
        column: Some(column),
        llm_explanation: &explanation,
        mapping: &finding.mapping,
        sql_preview: &preview,
    };
    let mapping = match state.hook.review_cleaning(&review) {
        Decision::Reject => {
            state.note(format!("string-outlier cleaning on {column:?} rejected by reviewer"));
            return Ok(());
        }
        Decision::AdjustMapping(adjusted) => adjusted,
        Decision::Approve => finding.mapping.clone(),
    };
    let expr = Expr::value_map(column, &mapping_to_values(&mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::StringOutliers,
            column: Some(column.to_string()),
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: format!("{} {}", finding.reasoning, explanation),
            sql: select,
            cells_changed: changed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::{FailingLlm, SimLlm};
    use cocoon_table::{Table, Value};

    fn rayyan_like() -> Table {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for _ in 0..40 {
            rows.push(vec!["eng".into()]);
        }
        for _ in 0..9 {
            rows.push(vec!["English".into()]);
        }
        for _ in 0..5 {
            rows.push(vec!["fre".into()]);
        }
        rows.push(vec!["French".into()]);
        Table::from_text_rows(&["article_language"], &rows).unwrap()
    }

    #[test]
    fn example1_end_to_end() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        let op = &state.ops[0];
        assert_eq!(op.issue, IssueKind::StringOutliers);
        assert_eq!(op.cells_changed, 10); // 9 English + 1 French
                                          // Every cell now uses ISO codes.
        let col = state.table.column(0).unwrap();
        assert!(col.values().iter().all(|v| { matches!(v.as_text(), Some("eng") | Some("fre")) }));
        // SQL artifact mentions the CASE map.
        assert!(op.rendered_sql().contains("WHEN 'English' THEN 'eng'"));
    }

    #[test]
    fn clean_column_untouched() {
        let rows: Vec<Vec<String>> = vec![vec!["eng".into()], vec!["fre".into()]];
        let table = Table::from_text_rows(&["lang"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table, table);
    }

    #[test]
    fn llm_failure_degrades_gracefully() {
        let llm = FailingLlm;
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.notes.len(), 1);
        assert!(state.notes[0].contains("degraded"));
    }

    #[test]
    fn reviewer_can_reject() {
        use crate::decision::RejectIssues;
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = RejectIssues { rejected: vec![IssueKind::StringOutliers] };
        let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert!(state.notes[0].contains("rejected"));
    }

    #[test]
    fn non_text_columns_skipped() {
        let rows: Vec<Vec<String>> = vec![vec!["1".into()], vec!["2".into()]];
        let mut table = Table::from_text_rows(&["n"], &rows).unwrap();
        table.set_column_type(0, cocoon_table::DataType::Int).unwrap();
        table.column_mut(0).unwrap().try_cast_all(cocoon_table::DataType::Int);
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table.cell(0, 0).unwrap(), &Value::Int(1));
    }

    #[test]
    fn detection_is_identical_across_thread_counts() {
        let run_at = |threads: usize| {
            let llm = SimLlm::new();
            let config = CleanerConfig { threads: Some(threads), ..CleanerConfig::default() };
            let mut hook = AutoApprove;
            let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
            run(&mut state);
            (state.table, state.ops.len(), state.notes)
        };
        assert_eq!(run_at(1), run_at(8));
    }
}
