//! §2.1.1 String Outliers: typos and inconsistent representations.
//!
//! Statistical detection samples the most frequent distinct values (default
//! 1000); semantic detection is the Figure 2 prompt; semantic cleaning is
//! the Figure 3 prompt, batched; the repair compiles to a `CASE WHEN` value
//! map.

use crate::apply::{apply_and_count, column_rewrite_select, mapping_to_values, restrict_mapping};
use crate::decision::{CleaningReview, Decision, DetectionReview};
use crate::ops::{CleaningOp, IssueKind};
use crate::state::PipelineState;
use cocoon_llm::prompts;
use cocoon_llm::{parse_cleaning_map, parse_detect_verdict};
use cocoon_profile::batches;
use cocoon_sql::{render_select, Expr};
use cocoon_table::DataType;

/// Runs string-outlier detection and cleaning over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    for index in 0..state.table.width() {
        let field = match state.table.schema().field(index) {
            Ok(f) => f.clone(),
            Err(_) => continue,
        };
        if field.data_type() != DataType::Text {
            continue;
        }
        if let Err(err) = run_column(state, index, field.name()) {
            state.note(format!(
                "string outliers on {:?} degraded to statistical-only: {err}",
                field.name()
            ));
        }
    }
}

fn run_column(
    state: &mut PipelineState<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<()> {
    let census = state.census(index, state.config.sample_size);
    if census.len() < 2 {
        return Ok(());
    }

    // Semantic detection (Figure 2).
    let response = state.ask(prompts::string_outliers_detect(column, &census))?;
    let verdict = parse_detect_verdict(&response)?;
    if !verdict.unusual {
        return Ok(());
    }
    let evidence = format!(
        "{} distinct values sampled by frequency (top {})",
        census.len(),
        state.config.sample_size
    );
    let detection = DetectionReview {
        issue: IssueKind::StringOutliers,
        column: Some(column),
        statistical_evidence: &evidence,
        llm_reasoning: &verdict.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("string outliers on {column:?} rejected by reviewer"));
        return Ok(());
    }

    // Semantic cleaning (Figure 3), one batch of values at a time.
    let mut mapping: Vec<(String, String)> = Vec::new();
    let mut explanations: Vec<String> = Vec::new();
    for batch in batches(&census, state.config.batch_size) {
        let response =
            state.ask(prompts::string_outliers_clean(column, &verdict.summary, &batch))?;
        let map = parse_cleaning_map(&response)?;
        if !map.explanation.is_empty() {
            explanations.push(map.explanation.clone());
        }
        mapping.extend(restrict_mapping(&map.mapping, &batch));
    }
    if mapping.is_empty() {
        return Ok(());
    }

    let expr = Expr::value_map(column, &mapping_to_values(&mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let preview = render_select(&select);
    let review = CleaningReview {
        issue: IssueKind::StringOutliers,
        column: Some(column),
        llm_explanation: &explanations.join(" "),
        mapping: &mapping,
        sql_preview: &preview,
    };
    let mapping = match state.hook.review_cleaning(&review) {
        Decision::Reject => {
            state.note(format!("string-outlier cleaning on {column:?} rejected by reviewer"));
            return Ok(());
        }
        Decision::AdjustMapping(adjusted) => adjusted,
        Decision::Approve => mapping,
    };
    let expr = Expr::value_map(column, &mapping_to_values(&mapping));
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.table = table;
    state.ops.push(CleaningOp {
        issue: IssueKind::StringOutliers,
        column: Some(column.to_string()),
        statistical_evidence: evidence,
        llm_reasoning: format!("{} {}", verdict.reasoning, explanations.join(" ")),
        sql: select,
        cells_changed: changed,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::{FailingLlm, SimLlm};
    use cocoon_table::{Table, Value};

    fn rayyan_like() -> Table {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for _ in 0..40 {
            rows.push(vec!["eng".into()]);
        }
        for _ in 0..9 {
            rows.push(vec!["English".into()]);
        }
        for _ in 0..5 {
            rows.push(vec!["fre".into()]);
        }
        rows.push(vec!["French".into()]);
        Table::from_text_rows(&["article_language"], &rows).unwrap()
    }

    #[test]
    fn example1_end_to_end() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
        run(&mut state);
        assert_eq!(state.ops.len(), 1);
        let op = &state.ops[0];
        assert_eq!(op.issue, IssueKind::StringOutliers);
        assert_eq!(op.cells_changed, 10); // 9 English + 1 French
                                          // Every cell now uses ISO codes.
        let col = state.table.column(0).unwrap();
        assert!(col.values().iter().all(|v| { matches!(v.as_text(), Some("eng") | Some("fre")) }));
        // SQL artifact mentions the CASE map.
        assert!(op.rendered_sql().contains("WHEN 'English' THEN 'eng'"));
    }

    #[test]
    fn clean_column_untouched() {
        let rows: Vec<Vec<String>> = vec![vec!["eng".into()], vec!["fre".into()]];
        let table = Table::from_text_rows(&["lang"], &rows).unwrap();
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table, table);
    }

    #[test]
    fn llm_failure_degrades_gracefully() {
        let llm = FailingLlm;
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.notes.len(), 1);
        assert!(state.notes[0].contains("degraded"));
    }

    #[test]
    fn reviewer_can_reject() {
        use crate::decision::RejectIssues;
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = RejectIssues { rejected: vec![IssueKind::StringOutliers] };
        let mut state = PipelineState::new(rayyan_like(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert!(state.notes[0].contains("rejected"));
    }

    #[test]
    fn non_text_columns_skipped() {
        let rows: Vec<Vec<String>> = vec![vec!["1".into()], vec!["2".into()]];
        let mut table = Table::from_text_rows(&["n"], &rows).unwrap();
        table.set_column_type(0, cocoon_table::DataType::Int).unwrap();
        table.column_mut(0).unwrap().try_cast_all(cocoon_table::DataType::Int);
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert_eq!(state.table.cell(0, 0).unwrap(), &Value::Int(1));
    }
}
