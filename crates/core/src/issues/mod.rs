//! The eight issue types of §2.1, each decomposed into statistical
//! detection, semantic detection and semantic cleaning (Figure 1b).

pub mod column_type;
pub mod dmv;
pub mod duplication;
pub mod functional_dependency;
pub mod numeric_outlier;
pub mod pattern_outlier;
pub mod string_outlier;
pub mod uniqueness;
