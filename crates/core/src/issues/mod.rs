//! The eight issue types of §2.1, each decomposed into statistical
//! detection, semantic detection and semantic cleaning (Figure 1b).
//!
//! Every module follows the same two-phase shape (see [`crate::state`]):
//! a read-only `detect` that fans out across columns (or FD candidates) on
//! the stage thread pool and returns ordered `Outcome`s, and a sequential
//! `decide` that routes each finding through the [`crate::DecisionHook`]
//! reviews and applies the compiled SQL. Detection sees the table as it
//! stood when the stage began; mutation happens only in the decide phase.

pub mod column_type;
pub mod dmv;
pub mod duplication;
pub mod functional_dependency;
pub mod numeric_outlier;
pub mod pattern_outlier;
pub mod string_outlier;
pub mod uniqueness;
