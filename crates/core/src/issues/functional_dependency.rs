//! §2.1.6 Functional Dependencies.
//!
//! Following Baran, only single-attribute FDs are considered. Statistical
//! detection ranks column pairs by conditional entropy; the LLM reviews
//! whether a statistically strong FD is *semantically* meaningful (the
//! Flights `flight → actual time` FD is the canonical rejection); for
//! meaningful FDs the LLM maps each violating group's wrong values to the
//! correct one, compiled to a group-scoped `CASE WHEN`.

use crate::apply::apply_and_count;
use crate::decision::{CleaningReview, Decision, DetectionReview};
use crate::ops::{CleaningOp, IssueKind};
use crate::state::PipelineState;
use cocoon_llm::{parse_cleaning_map, parse_fd_verdict, prompts};
use cocoon_profile::{fd_candidates, fd_violating_groups};
use cocoon_sql::{render_select, Expr, Projection, Select};
use cocoon_table::Value;

/// Runs FD review and repair over the whole table.
pub fn run(state: &mut PipelineState<'_>) {
    let candidates =
        fd_candidates(&state.table, state.config.fd_min_strength, state.config.fd_max_unique_ratio);
    for candidate in candidates {
        if let Err(err) = run_candidate(state, candidate.lhs, candidate.rhs, candidate.strength) {
            state.note(format!("FD repair degraded to statistical-only: {err}"));
        }
    }
}

fn run_candidate(
    state: &mut PipelineState<'_>,
    lhs: usize,
    rhs: usize,
    strength: f64,
) -> crate::error::Result<()> {
    let lhs_name = state.table.schema().field(lhs)?.name().to_string();
    let rhs_name = state.table.schema().field(rhs)?.name().to_string();
    let groups = {
        let lhs_col = state.table.column(lhs)?;
        let rhs_col = state.table.column(rhs)?;
        fd_violating_groups(lhs_col.values(), rhs_col.values())
    };
    if groups.is_empty() {
        return Ok(());
    }
    let groups_text: Vec<(String, Vec<(String, usize)>)> = groups
        .iter()
        .map(|(l, census)| (l.render(), census.iter().map(|(v, c)| (v.render(), *c)).collect()))
        .collect();

    // Semantic review of the FD itself.
    let response = state.ask(prompts::fd_review(
        &lhs_name,
        &rhs_name,
        strength,
        groups.len(),
        &groups_text[..groups_text.len().min(5)],
    ))?;
    let verdict = parse_fd_verdict(&response)?;
    let evidence = format!("entropy strength {strength:.3}; {} violating groups", groups.len());
    if !verdict.meaningful {
        state.note(format!(
            "FD {lhs_name} → {rhs_name} rejected as not semantically meaningful: {}",
            verdict.reasoning
        ));
        return Ok(());
    }
    let detection = DetectionReview {
        issue: IssueKind::FunctionalDependency,
        column: Some(&rhs_name),
        statistical_evidence: &evidence,
        llm_reasoning: &verdict.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("FD {lhs_name} → {rhs_name} rejected by reviewer"));
        return Ok(());
    }

    // Semantic cleaning: the LLM provides the correct mapping per group.
    let response = state.ask(prompts::fd_mapping(&lhs_name, &rhs_name, &groups_text))?;
    let map = parse_cleaning_map(&response)?;
    if map.mapping.is_empty() {
        return Ok(());
    }

    // Compile group-scoped CASE arms: a pair (old → new) applies only inside
    // groups that contain `old` and whose plurality value is `new`. Literals
    // are parsed back into the column's declared type so repairs keep
    // working after a CAST step retyped the column.
    let lhs_type = state.table.schema().field(lhs)?.data_type();
    let rhs_type = state.table.schema().field(rhs)?.data_type();
    let typed = |raw: &str, ty: cocoon_table::DataType| -> Value {
        let text = Value::Text(raw.to_string());
        text.cast(ty).unwrap_or(text)
    };
    let mut arms: Vec<(Expr, Expr)> = Vec::new();
    let mut pairs_for_review: Vec<(String, String)> = Vec::new();
    for (lhs_value, census) in &groups_text {
        let Some((top_value, _)) = census.first() else { continue };
        for (old, new) in &map.mapping {
            if new != top_value || old == new {
                continue;
            }
            if !census.iter().any(|(v, _)| v == old) {
                continue;
            }
            let condition = Expr::and(
                Expr::eq(Expr::col(&lhs_name), Expr::Literal(typed(lhs_value, lhs_type))),
                Expr::eq(Expr::col(&rhs_name), Expr::Literal(typed(old, rhs_type))),
            );
            arms.push((condition, Expr::Literal(typed(new, rhs_type))));
            pairs_for_review.push((old.clone(), new.clone()));
        }
    }
    if arms.is_empty() {
        return Ok(());
    }
    let expr = Expr::Case { operand: None, arms, otherwise: Some(Box::new(Expr::col(&rhs_name))) };
    let projections = state
        .table
        .schema()
        .fields()
        .iter()
        .map(|field| {
            if field.name() == rhs_name {
                Projection::aliased(expr.clone(), field.name())
            } else {
                Projection::Expr { expr: Expr::col(field.name()), alias: None }
            }
        })
        .collect();
    let select = Select {
        distinct: false,
        projections,
        from: "input".into(),
        where_clause: None,
        qualify: None,
        comment: None,
    };
    let preview = render_select(&select);
    let review = CleaningReview {
        issue: IssueKind::FunctionalDependency,
        column: Some(&rhs_name),
        llm_explanation: &map.explanation,
        mapping: &pairs_for_review,
        sql_preview: &preview,
    };
    if state.hook.review_cleaning(&review) == Decision::Reject {
        state.note(format!("FD repair {lhs_name} → {rhs_name} rejected by reviewer"));
        return Ok(());
    }
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.table = table;
    state.ops.push(CleaningOp {
        issue: IssueKind::FunctionalDependency,
        column: Some(rhs_name.clone()),
        statistical_evidence: format!("{lhs_name} → {rhs_name}: {evidence}"),
        llm_reasoning: format!("{} {}", verdict.reasoning, map.explanation),
        sql: select,
        cells_changed: changed,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::Table;

    fn hospital_like() -> Table {
        // zip → city holds across 10 zip groups except one typo and one
        // misplaced county value.
        let cities = [
            "birmingham",
            "dothan",
            "mobile",
            "huntsville",
            "montgomery",
            "tuscaloosa",
            "phoenix",
            "tucson",
            "austin",
            "dallas",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, city) in cities.iter().enumerate() {
            let zip = format!("35{:03}", i);
            for _ in 0..8 {
                rows.push(vec![zip.clone(), (*city).into()]);
            }
        }
        rows[1][1] = "birminghxm".into(); // typo in the birmingham group
        rows[9][1] = "jefferson".into(); // misplaced county in the dothan group
        Table::from_text_rows(&["zip_code", "city"], &rows).unwrap()
    }

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>, Vec<String>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops, state.notes)
    }

    #[test]
    fn zip_city_fd_repaired_by_majority() {
        let (cleaned, ops, _) = run_on(hospital_like());
        assert!(!ops.is_empty());
        let city = cleaned.column_by_name("city").unwrap();
        assert!(!city
            .values()
            .iter()
            .any(|v| { matches!(v.as_text(), Some("birminghxm") | Some("jefferson")) }));
        assert_eq!(cleaned.render_cell(1, 1).unwrap(), "birmingham");
        assert_eq!(cleaned.render_cell(9, 1).unwrap(), "dothan");
        let op = &ops[0];
        assert_eq!(op.issue, IssueKind::FunctionalDependency);
        assert_eq!(op.cells_changed, 2);
        assert!(op.rendered_sql().contains("zip_code ="));
    }

    #[test]
    fn actual_time_fd_rejected() {
        // flight → actual_arrival is statistically strong but semantically
        // rejected (the paper's Flights analysis).
        let mut rows: Vec<Vec<String>> = Vec::new();
        // 20 flights, each with a consistent time except two flights whose
        // actual arrival varies by a minute — statistically a strong FD.
        for f in 0..20 {
            let time = format!("{}:{:02} p.m.", (f % 11) + 1, f * 2);
            for _ in 0..6 {
                rows.push(vec![format!("AA-{f}"), time.clone()]);
            }
        }
        rows[1][1] = "10:31 p.m.".into();
        rows[7][1] = "10:39 p.m.".into();
        let table = Table::from_text_rows(&["flight", "actual_arrival_time"], &rows).unwrap();
        let (cleaned, ops, notes) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
        assert!(notes.iter().any(|n| n.contains("rejected as not semantically meaningful")));
    }

    #[test]
    fn consistent_fd_no_op() {
        let rows: Vec<Vec<String>> = vec![
            vec!["1".into(), "a".into()],
            vec!["1".into(), "a".into()],
            vec!["2".into(), "b".into()],
            vec!["2".into(), "b".into()],
        ];
        let table = Table::from_text_rows(&["code", "name"], &rows).unwrap();
        let (_, ops, _) = run_on(table);
        assert!(ops.is_empty());
    }

    #[test]
    fn ambiguous_group_left_alone() {
        // Two rhs values with equal support and no typo relation: the
        // mapping skips the group.
        let rows: Vec<Vec<String>> = vec![
            vec!["z1".into(), "alpha".into()],
            vec!["z1".into(), "omega".into()],
            vec!["z1".into(), "alpha".into()],
            vec!["z1".into(), "omega".into()],
            vec!["z2".into(), "beta".into()],
            vec!["z2".into(), "beta".into()],
        ];
        let table = Table::from_text_rows(&["zone_code", "name"], &rows).unwrap();
        let (cleaned, ops, _) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
    }
}
