//! §2.1.6 Functional Dependencies.
//!
//! Following Baran, only single-attribute FDs are considered. Statistical
//! detection ranks column pairs by conditional entropy; the LLM reviews
//! whether a statistically strong FD is *semantically* meaningful (the
//! Flights `flight → actual time` FD is the canonical rejection); for
//! meaningful FDs the LLM maps each violating group's wrong values to the
//! correct one, compiled to a group-scoped `CASE WHEN`.
//!
//! Detect phase (concurrent, per candidate pair): violating groups on the
//! stage-entry snapshot → semantic FD review. Decide phase (sequential):
//! because FD repairs can interact (one repair may fix — or create —
//! another candidate's violations), groups are taken from the snapshot only
//! while no repair has been applied yet; after the first applied repair
//! each remaining candidate recomputes its groups against the live table,
//! exactly as the sequential pipeline always did.

use crate::apply::apply_and_count;
use crate::decision::{CleaningReview, Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_cleaning_map, parse_fd_verdict, prompts};
use cocoon_profile::{fd_violating_groups, FdCandidate, FdScan};
use cocoon_sql::{render_select, Expr, Projection, Select};
use cocoon_table::{Table, Value};

/// Rendered violating groups: `(lhs value, rhs census)` as prompt text.
type GroupsText = Vec<(String, Vec<(String, usize)>)>;

struct Finding {
    lhs: usize,
    rhs: usize,
    lhs_name: String,
    rhs_name: String,
    strength: f64,
    /// Semantic review prefetched on the snapshot: `(meaningful, reasoning,
    /// self-reported confidence)`. `None` when the snapshot had no violating
    /// groups, so no review was spent; the decide phase asks lazily in the
    /// rare case an earlier repair has since created violations.
    verdict: Option<(bool, String, Option<f64>)>,
    /// Violating-group count on the snapshot.
    groups_len: usize,
    /// Snapshot groups, fully rendered — only for meaningful verdicts (the
    /// mapping step needs them); rejected candidates never pay the render.
    groups: Option<GroupsText>,
}

fn degraded(err: &crate::error::CoreError) -> String {
    format!("FD repair degraded to statistical-only: {err}")
}

/// Runs FD review and repair over the whole table.
pub fn run(state: &mut PipelineState<'_>) {
    // One scan encodes every column once; candidate scoring and each
    // detection worker's group extraction all reuse it. Scoped so the
    // borrow of `state.table` ends before the decide phase mutates it.
    let outcomes = {
        let scan = FdScan::new(&state.table);
        // When the run's entry profile is still valid its candidates were
        // scored under the same thresholds (`CleanerConfig::profile_options`
        // maps them), on this exact table — reuse them instead of scoring
        // every column pair again. The scan is still needed for group
        // extraction either way.
        let candidates = match state.detect_ctx().profile {
            Some(profile) => profile.fd_candidates.clone(),
            None => scan.candidates(state.config.fd_min_strength, state.config.fd_max_unique_ratio),
        };
        state.detect_map(candidates, |ctx, candidate| detect_candidate(ctx, &scan, candidate))
    };
    // Becomes true once a repair lands; later candidates then recompute
    // their groups against the mutated table.
    let mut table_changed = false;
    for outcome in outcomes {
        match outcome {
            Outcome::Clean => {}
            Outcome::Note(note) => state.note(note),
            Outcome::Finding(finding) => match decide(state, &finding, table_changed) {
                Ok(applied) => table_changed |= applied,
                Err(err) => state.note(degraded(&err)),
            },
        }
    }
}

fn groups_text_of(table: &Table, lhs: usize, rhs: usize) -> crate::error::Result<GroupsText> {
    let lhs_col = table.column(lhs)?;
    let rhs_col = table.column(rhs)?;
    let groups = fd_violating_groups(lhs_col.values(), rhs_col.values());
    Ok(groups
        .iter()
        .map(|(l, census)| (l.render(), census.iter().map(|(v, c)| (v.render(), *c)).collect()))
        .collect())
}

fn detect_candidate(
    ctx: &DetectCtx<'_>,
    scan: &FdScan,
    candidate: FdCandidate,
) -> Outcome<Finding> {
    match detect_inner(ctx, scan, &candidate) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    scan: &FdScan,
    candidate: &FdCandidate,
) -> crate::error::Result<Outcome<Finding>> {
    let lhs_name = ctx.table.schema().field(candidate.lhs)?.name().to_string();
    let rhs_name = ctx.table.schema().field(candidate.rhs)?.name().to_string();
    let groups = scan.violating_groups(candidate.lhs, candidate.rhs);
    // No violations on the snapshot: no review to spend. The finding still
    // reaches the decide phase, which re-checks against the live table.
    let (verdict, rendered) = if groups.is_empty() {
        (None, None)
    } else {
        let render = |(l, census): &(Value, Vec<(Value, usize)>)| {
            (l.render(), census.iter().map(|(v, c)| (v.render(), *c)).collect::<Vec<_>>())
        };
        let head: GroupsText = groups.iter().take(5).map(render).collect();
        let response = ctx.ask(prompts::fd_review(
            &lhs_name,
            &rhs_name,
            candidate.strength,
            groups.len(),
            &head,
        ))?;
        let verdict = parse_fd_verdict(&response)?;
        // The mapping step consumes the full rendered groups; only
        // meaningful verdicts get there, so only they pay the render.
        let rendered = verdict.meaningful.then(|| groups.iter().map(render).collect());
        (Some((verdict.meaningful, verdict.reasoning, verdict.confidence)), rendered)
    };
    Ok(Outcome::Finding(Finding {
        lhs: candidate.lhs,
        rhs: candidate.rhs,
        lhs_name,
        rhs_name,
        strength: candidate.strength,
        verdict,
        groups_len: groups.len(),
        groups: rendered,
    }))
}

/// Reviews and (when approved) repairs one candidate. Returns whether a
/// repair was applied to the table.
fn decide(
    state: &mut PipelineState<'_>,
    finding: &Finding,
    table_changed: bool,
) -> crate::error::Result<bool> {
    let (lhs_name, rhs_name) = (finding.lhs_name.as_str(), finding.rhs_name.as_str());
    // Snapshot groups stay valid until the first applied repair; after one,
    // recompute against the live table.
    let (groups_text, groups_len, meaningful, reasoning, review_confidence) = if table_changed {
        let groups_text = groups_text_of(&state.table, finding.lhs, finding.rhs)?;
        if groups_text.is_empty() {
            return Ok(false);
        }
        let (meaningful, reasoning, review_confidence) = match &finding.verdict {
            Some((meaningful, reasoning, confidence)) => {
                (*meaningful, reasoning.clone(), *confidence)
            }
            None => {
                // An earlier repair created violations the snapshot didn't
                // have; ask for the semantic review now, on live groups.
                let response = state.ask(prompts::fd_review(
                    lhs_name,
                    rhs_name,
                    finding.strength,
                    groups_text.len(),
                    &groups_text[..groups_text.len().min(5)],
                ))?;
                let verdict = parse_fd_verdict(&response)?;
                (verdict.meaningful, verdict.reasoning, verdict.confidence)
            }
        };
        let groups_len = groups_text.len();
        (groups_text, groups_len, meaningful, reasoning, review_confidence)
    } else {
        if finding.groups_len == 0 {
            return Ok(false);
        }
        let (meaningful, reasoning, review_confidence) =
            finding.verdict.clone().expect("non-empty snapshot groups were reviewed");
        // Rejected candidates never need the full render.
        let groups_text = if meaningful {
            finding.groups.clone().expect("meaningful finding carries rendered groups")
        } else {
            GroupsText::new()
        };
        (groups_text, finding.groups_len, meaningful, reasoning, review_confidence)
    };
    let evidence =
        format!("entropy strength {:.3}; {} violating groups", finding.strength, groups_len);
    if !meaningful {
        state.note(format!(
            "FD {lhs_name} → {rhs_name} rejected as not semantically meaningful: {reasoning}"
        ));
        return Ok(false);
    }
    let detection = DetectionReview {
        issue: IssueKind::FunctionalDependency,
        column: Some(rhs_name),
        statistical_evidence: &evidence,
        llm_reasoning: &reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("FD {lhs_name} → {rhs_name} rejected by reviewer"));
        return Ok(false);
    }

    // Semantic cleaning: the LLM provides the correct mapping per group.
    let response = state.ask(prompts::fd_mapping(lhs_name, rhs_name, &groups_text))?;
    let map = parse_cleaning_map(&response)?;
    if map.mapping.is_empty() {
        return Ok(false);
    }

    // Compile group-scoped CASE arms: a pair (old → new) applies only inside
    // groups that contain `old` and whose plurality value is `new`. Literals
    // are parsed back into the column's declared type so repairs keep
    // working after a CAST step retyped the column.
    let lhs_type = state.table.schema().field(finding.lhs)?.data_type();
    let rhs_type = state.table.schema().field(finding.rhs)?.data_type();
    let typed = |raw: &str, ty: cocoon_table::DataType| -> Value {
        let text = Value::Text(raw.to_string());
        text.cast(ty).unwrap_or(text)
    };
    let mut arms: Vec<(Expr, Expr)> = Vec::new();
    let mut pairs_for_review: Vec<(String, String)> = Vec::new();
    for (lhs_value, census) in &groups_text {
        let Some((top_value, _)) = census.first() else { continue };
        for (old, new) in &map.mapping {
            if new != top_value || old == new {
                continue;
            }
            if !census.iter().any(|(v, _)| v == old) {
                continue;
            }
            let condition = Expr::and(
                Expr::eq(Expr::col(lhs_name), Expr::Literal(typed(lhs_value, lhs_type))),
                Expr::eq(Expr::col(rhs_name), Expr::Literal(typed(old, rhs_type))),
            );
            arms.push((condition, Expr::Literal(typed(new, rhs_type))));
            pairs_for_review.push((old.clone(), new.clone()));
        }
    }
    if arms.is_empty() {
        return Ok(false);
    }
    let expr = Expr::Case { operand: None, arms, otherwise: Some(Box::new(Expr::col(rhs_name))) };
    let projections = state
        .table
        .schema()
        .fields()
        .iter()
        .map(|field| {
            if field.name() == rhs_name {
                Projection::aliased(expr.clone(), field.name())
            } else {
                Projection::Expr { expr: Expr::col(field.name()), alias: None }
            }
        })
        .collect();
    let select = Select {
        distinct: false,
        projections,
        from: "input".into(),
        where_clause: None,
        qualify: None,
        comment: None,
    };
    let preview = render_select(&select);
    let review = CleaningReview {
        issue: IssueKind::FunctionalDependency,
        column: Some(rhs_name),
        llm_explanation: &map.explanation,
        mapping: &pairs_for_review,
        sql_preview: &preview,
    };
    if state.hook.review_cleaning(&review) == Decision::Reject {
        state.note(format!("FD repair {lhs_name} → {rhs_name} rejected by reviewer"));
        return Ok(false);
    }
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(false);
    }
    let confidence = match (review_confidence, map.confidence) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let applied = state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::FunctionalDependency,
            column: Some(rhs_name.to_string()),
            statistical_evidence: format!("{lhs_name} → {rhs_name}: {evidence}"),
            llm_reasoning: format!("{reasoning} {}", map.explanation),
            sql: select,
            cells_changed: changed,
            confidence: Confidence::self_reported(confidence),
        },
    );
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::Table;

    fn hospital_like() -> Table {
        // zip → city holds across 10 zip groups except one typo and one
        // misplaced county value.
        let cities = [
            "birmingham",
            "dothan",
            "mobile",
            "huntsville",
            "montgomery",
            "tuscaloosa",
            "phoenix",
            "tucson",
            "austin",
            "dallas",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, city) in cities.iter().enumerate() {
            let zip = format!("35{:03}", i);
            for _ in 0..8 {
                rows.push(vec![zip.clone(), (*city).into()]);
            }
        }
        rows[1][1] = "birminghxm".into(); // typo in the birmingham group
        rows[9][1] = "jefferson".into(); // misplaced county in the dothan group
        Table::from_text_rows(&["zip_code", "city"], &rows).unwrap()
    }

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>, Vec<String>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops, state.notes)
    }

    #[test]
    fn zip_city_fd_repaired_by_majority() {
        let (cleaned, ops, _) = run_on(hospital_like());
        assert!(!ops.is_empty());
        let city = cleaned.column_by_name("city").unwrap();
        assert!(!city
            .values()
            .iter()
            .any(|v| { matches!(v.as_text(), Some("birminghxm") | Some("jefferson")) }));
        assert_eq!(cleaned.render_cell(1, 1).unwrap(), "birmingham");
        assert_eq!(cleaned.render_cell(9, 1).unwrap(), "dothan");
        let op = &ops[0];
        assert_eq!(op.issue, IssueKind::FunctionalDependency);
        assert_eq!(op.cells_changed, 2);
        assert!(op.rendered_sql().contains("zip_code ="));
    }

    #[test]
    fn actual_time_fd_rejected() {
        // flight → actual_arrival is statistically strong but semantically
        // rejected (the paper's Flights analysis).
        let mut rows: Vec<Vec<String>> = Vec::new();
        // 20 flights, each with a consistent time except two flights whose
        // actual arrival varies by a minute — statistically a strong FD.
        for f in 0..20 {
            let time = format!("{}:{:02} p.m.", (f % 11) + 1, f * 2);
            for _ in 0..6 {
                rows.push(vec![format!("AA-{f}"), time.clone()]);
            }
        }
        rows[1][1] = "10:31 p.m.".into();
        rows[7][1] = "10:39 p.m.".into();
        let table = Table::from_text_rows(&["flight", "actual_arrival_time"], &rows).unwrap();
        let (cleaned, ops, notes) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
        assert!(notes.iter().any(|n| n.contains("rejected as not semantically meaningful")));
    }

    #[test]
    fn consistent_fd_no_op() {
        let rows: Vec<Vec<String>> = vec![
            vec!["1".into(), "a".into()],
            vec!["1".into(), "a".into()],
            vec!["2".into(), "b".into()],
            vec!["2".into(), "b".into()],
        ];
        let table = Table::from_text_rows(&["code", "name"], &rows).unwrap();
        let (_, ops, _) = run_on(table);
        assert!(ops.is_empty());
    }

    #[test]
    fn ambiguous_group_left_alone() {
        // Two rhs values with equal support and no typo relation: the
        // mapping skips the group.
        let rows: Vec<Vec<String>> = vec![
            vec!["z1".into(), "alpha".into()],
            vec!["z1".into(), "omega".into()],
            vec!["z1".into(), "alpha".into()],
            vec!["z1".into(), "omega".into()],
            vec!["z2".into(), "beta".into()],
            vec!["z2".into(), "beta".into()],
        ];
        let table = Table::from_text_rows(&["zone_code", "name"], &rows).unwrap();
        let (cleaned, ops, _) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
    }
}
