//! §2.1.4 Column Type.
//!
//! Statistical detection reads the declared catalog type and the parse
//! census; the LLM suggests the semantically right type ("yes"/"no" ⇒
//! BOOLEAN); cleaning is a `CAST` — preceded, for numeric targets with
//! non-numeric spellings ("1 hr. 30 min."), by a semantic value map
//! (Appendix B).
//!
//! Detect phase (concurrent, per text column): type prompt → verdict →
//! numeric-conversion map prefetch. Decide phase (sequential): hook review
//! → cast compile → apply with the destructive-cast guard.

use crate::apply::{apply_and_count, column_rewrite_select, mapping_to_values, restrict_mapping};
use crate::decision::{Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_cleaning_map, parse_type_verdict, prompts};
use cocoon_sql::Expr;
use cocoon_table::{infer_column_type, DataType};

struct Finding {
    index: usize,
    column: String,
    evidence: String,
    reasoning: String,
    target: DataType,
    /// Semantic numeric-conversion map ("1 hr. 30 min." → "90"), prefetched
    /// for numeric targets whose census holds non-parsing values.
    conversion_mapping: Vec<(String, String)>,
    conversion_reasoning: String,
    confidence: Option<f64>,
}

fn degraded(column: &str, err: &crate::error::CoreError) -> String {
    format!("column-type review on {column:?} degraded to statistical-only: {err}")
}

/// Runs column-type review and casting over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    let outcomes = state.detect_columns(detect_column);
    state.decide_outcomes(outcomes, decide, |finding, err| degraded(&finding.column, err));
}

fn detect_column(ctx: &DetectCtx<'_>, index: usize) -> Outcome<Finding> {
    let Ok(field) = ctx.table.schema().field(index) else { return Outcome::Clean };
    if field.data_type() != DataType::Text {
        return Outcome::Clean;
    }
    let column = field.name().to_string();
    match detect_inner(ctx, index, &column) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&column, &err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<Outcome<Finding>> {
    let census = ctx.census(index, 50);
    if census.is_empty() {
        return Ok(Outcome::Clean);
    }
    // The entry profile's inference was computed under the same tolerance
    // (`CleanerConfig::profile_options` maps it through).
    let inference = match ctx.column_profile(index) {
        Some(profile) => profile.inference.clone(),
        None => infer_column_type(ctx.table.column(index)?, ctx.config.type_tolerance),
    };
    let declared = ctx.table.schema().field(index)?.data_type();

    let response = ctx.ask(prompts::column_type(
        column,
        declared.sql_name(),
        inference.data_type.sql_name(),
        inference.confidence,
        &census,
    ))?;
    let verdict = parse_type_verdict(&response)?;
    let Some(target) = DataType::from_sql_name(&verdict.type_name) else {
        return Ok(Outcome::Note(format!(
            "column-type review on {column:?} suggested unknown type {:?}",
            verdict.type_name
        )));
    };
    if target == DataType::Text {
        return Ok(Outcome::Clean);
    }
    let evidence = format!(
        "declared {}, inferred {} at {:.0}% confidence",
        declared.sql_name(),
        inference.data_type.sql_name(),
        inference.confidence * 100.0
    );

    // For numeric targets, values that don't parse as numbers first get a
    // semantic numeric-conversion map (Appendix B: "1 hr. 30 min." → 90).
    // The map must cover the column's full distinct census — the 50-value
    // sample shown in the type prompt is not enough to cast every cell.
    let mut conversion_mapping: Vec<(String, String)> = Vec::new();
    let mut conversion_reasoning = String::new();
    let mut confidence = verdict.confidence;
    if target.is_numeric() {
        let full_census = ctx.census(index, ctx.config.sample_size);
        let failing: Vec<(String, usize)> =
            full_census.iter().filter(|(v, _)| v.trim().parse::<f64>().is_err()).cloned().collect();
        if !failing.is_empty() {
            let response = ctx.ask(prompts::numeric_conversion(column, &failing))?;
            let map = parse_cleaning_map(&response)?;
            conversion_mapping = restrict_mapping(&map.mapping, &failing);
            if !conversion_mapping.is_empty() {
                conversion_reasoning = map.explanation;
                confidence = match (confidence, map.confidence) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
    }
    Ok(Outcome::Finding(Finding {
        index,
        column: column.to_string(),
        evidence,
        reasoning: verdict.reasoning,
        target,
        conversion_mapping,
        conversion_reasoning,
        confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let column = finding.column.as_str();
    let target = finding.target;
    let detection = DetectionReview {
        issue: IssueKind::ColumnType,
        column: Some(column),
        statistical_evidence: &finding.evidence,
        llm_reasoning: &finding.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("column-type cast on {column:?} rejected by reviewer"));
        return Ok(());
    }

    let inner = if finding.conversion_mapping.is_empty() {
        Expr::col(column)
    } else {
        Expr::Case {
            operand: Some(Box::new(Expr::col(column))),
            arms: mapping_to_values(&finding.conversion_mapping)
                .into_iter()
                .map(|(old, new)| (Expr::Literal(old), Expr::Literal(new)))
                .collect(),
            otherwise: Some(Box::new(Expr::col(column))),
        }
    };
    let expr = Expr::try_cast(inner, target);
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    // A cast that empties the column means the suggestion was wrong; the
    // human-in-the-loop would reject it, and so do we.
    let nulls_before = state.table.column(finding.index)?.null_count();
    let nulls_after = table.column(finding.index)?.null_count();
    let non_null_before = state.table.height() - nulls_before;
    if non_null_before > 0 {
        let lost = nulls_after.saturating_sub(nulls_before);
        if lost * 2 > non_null_before {
            state.note(format!(
                "cast of {column:?} to {} abandoned: it would null {lost}/{non_null_before} values",
                target.sql_name()
            ));
            return Ok(());
        }
    }
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::ColumnType,
            column: Some(column.to_string()),
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: format!("{} {}", finding.reasoning, finding.conversion_reasoning)
                .trim()
                .to_string(),
            sql: select,
            cells_changed: changed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{Table, Value};

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops)
    }

    #[test]
    fn yes_no_becomes_boolean() {
        let rows: Vec<Vec<String>> =
            vec![vec!["yes".into()], vec!["no".into()], vec!["yes".into()]];
        let table = Table::from_text_rows(&["EmergencyService"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Bool);
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::Bool(true));
        assert_eq!(cleaned.render_cell(0, 0).unwrap(), "True");
        assert!(ops[0].rendered_sql().contains("TRY_CAST"));
    }

    #[test]
    fn durations_convert_then_cast() {
        let rows: Vec<Vec<String>> =
            vec![vec!["90 min".into()], vec!["1 hr. 30 min.".into()], vec!["100 min".into()]];
        let table = Table::from_text_rows(&["duration"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Float);
        // Appendix B: both spellings become the float 90.
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::Float(90.0));
        assert_eq!(cleaned.cell(1, 0).unwrap(), &Value::Float(90.0));
        assert_eq!(cleaned.cell(2, 0).unwrap(), &Value::Float(100.0));
    }

    #[test]
    fn integer_column_cast() {
        let rows: Vec<Vec<String>> = (1..=20).map(|i| vec![i.to_string()]).collect();
        let table = Table::from_text_rows(&["count"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Int);
    }

    #[test]
    fn free_text_stays_text() {
        let rows: Vec<Vec<String>> = vec![vec!["alice".into()], vec!["bob".into()]];
        let table = Table::from_text_rows(&["name"], &rows).unwrap();
        let (cleaned, ops) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
    }

    #[test]
    fn zip_codes_stay_text() {
        let rows: Vec<Vec<String>> = vec![vec!["35233".into()], vec!["02139".into()]];
        let table = Table::from_text_rows(&["zip_code"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert!(ops.is_empty());
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Text);
    }

    #[test]
    fn destructive_cast_abandoned() {
        // A (scripted) model wrongly suggests BIGINT for free text; the
        // cast would null most values, so the pipeline abandons it.
        use cocoon_llm::ScriptedLlm;
        let rows: Vec<Vec<String>> =
            vec![vec!["hello".into()], vec!["world".into()], vec!["7".into()]];
        let table = Table::from_text_rows(&["stuff"], &rows).unwrap();
        let llm = ScriptedLlm::new([
            r#"{"Reasoning": "looks numeric", "Type": "BIGINT"}"#,
            "```yml\nexplanation: >\n  nothing converts\nmapping:\n```\n",
        ]);
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert!(state.notes.iter().any(|n| n.contains("abandoned")));
        assert_eq!(state.table, table);
    }
}
