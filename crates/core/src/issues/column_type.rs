//! §2.1.4 Column Type.
//!
//! Statistical detection reads the declared catalog type and the parse
//! census; the LLM suggests the semantically right type ("yes"/"no" ⇒
//! BOOLEAN); cleaning is a `CAST` — preceded, for numeric targets with
//! non-numeric spellings ("1 hr. 30 min."), by a semantic value map
//! (Appendix B).

use crate::apply::{apply_and_count, column_rewrite_select, mapping_to_values, restrict_mapping};
use crate::decision::{Decision, DetectionReview};
use crate::ops::{CleaningOp, IssueKind};
use crate::state::PipelineState;
use cocoon_llm::{parse_cleaning_map, parse_type_verdict, prompts};
use cocoon_sql::Expr;
use cocoon_table::{infer_column_type, DataType};

/// Runs column-type review and casting over every text column.
pub fn run(state: &mut PipelineState<'_>) {
    for index in 0..state.table.width() {
        let field = match state.table.schema().field(index) {
            Ok(f) => f.clone(),
            Err(_) => continue,
        };
        if field.data_type() != DataType::Text {
            continue;
        }
        if let Err(err) = run_column(state, index, field.name()) {
            state.note(format!(
                "column-type review on {:?} degraded to statistical-only: {err}",
                field.name()
            ));
        }
    }
}

fn run_column(
    state: &mut PipelineState<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<()> {
    let census = state.census(index, 50);
    if census.is_empty() {
        return Ok(());
    }
    let inference = infer_column_type(state.table.column(index)?, state.config.type_tolerance);
    let declared = state.table.schema().field(index)?.data_type();

    let response = state.ask(prompts::column_type(
        column,
        declared.sql_name(),
        inference.data_type.sql_name(),
        inference.confidence,
        &census,
    ))?;
    let verdict = parse_type_verdict(&response)?;
    let Some(target) = DataType::from_sql_name(&verdict.type_name) else {
        state.note(format!(
            "column-type review on {column:?} suggested unknown type {:?}",
            verdict.type_name
        ));
        return Ok(());
    };
    if target == DataType::Text {
        return Ok(());
    }
    let evidence = format!(
        "declared {}, inferred {} at {:.0}% confidence",
        declared.sql_name(),
        inference.data_type.sql_name(),
        inference.confidence * 100.0
    );
    let detection = DetectionReview {
        issue: IssueKind::ColumnType,
        column: Some(column),
        statistical_evidence: &evidence,
        llm_reasoning: &verdict.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("column-type cast on {column:?} rejected by reviewer"));
        return Ok(());
    }

    // For numeric targets, values that don't parse as numbers first get a
    // semantic numeric-conversion map (Appendix B: "1 hr. 30 min." → 90).
    // The map must cover the column's full distinct census — the 50-value
    // sample shown in the type prompt is not enough to cast every cell.
    let mut inner = Expr::col(column);
    let mut conversion_reasoning = String::new();
    if target.is_numeric() {
        let full_census = state.census(index, state.config.sample_size);
        let failing: Vec<(String, usize)> =
            full_census.iter().filter(|(v, _)| v.trim().parse::<f64>().is_err()).cloned().collect();
        if !failing.is_empty() {
            let response = state.ask(prompts::numeric_conversion(column, &failing))?;
            let map = parse_cleaning_map(&response)?;
            let mapping = restrict_mapping(&map.mapping, &failing);
            if !mapping.is_empty() {
                inner = Expr::Case {
                    operand: Some(Box::new(Expr::col(column))),
                    arms: mapping_to_values(&mapping)
                        .into_iter()
                        .map(|(old, new)| (Expr::Literal(old), Expr::Literal(new)))
                        .collect(),
                    otherwise: Some(Box::new(Expr::col(column))),
                };
                conversion_reasoning = map.explanation;
            }
        }
    }

    let expr = Expr::try_cast(inner, target);
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    // A cast that empties the column means the suggestion was wrong; the
    // human-in-the-loop would reject it, and so do we.
    let nulls_before = state.table.column(index)?.null_count();
    let nulls_after = table.column(index)?.null_count();
    let non_null_before = state.table.height() - nulls_before;
    if non_null_before > 0 {
        let lost = nulls_after.saturating_sub(nulls_before);
        if lost * 2 > non_null_before {
            state.note(format!(
                "cast of {column:?} to {} abandoned: it would null {lost}/{non_null_before} values",
                target.sql_name()
            ));
            return Ok(());
        }
    }
    state.table = table;
    state.ops.push(CleaningOp {
        issue: IssueKind::ColumnType,
        column: Some(column.to_string()),
        statistical_evidence: evidence,
        llm_reasoning: format!("{} {}", verdict.reasoning, conversion_reasoning).trim().to_string(),
        sql: select,
        cells_changed: changed,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{Table, Value};

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops)
    }

    #[test]
    fn yes_no_becomes_boolean() {
        let rows: Vec<Vec<String>> =
            vec![vec!["yes".into()], vec!["no".into()], vec!["yes".into()]];
        let table = Table::from_text_rows(&["EmergencyService"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Bool);
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::Bool(true));
        assert_eq!(cleaned.render_cell(0, 0).unwrap(), "True");
        assert!(ops[0].rendered_sql().contains("TRY_CAST"));
    }

    #[test]
    fn durations_convert_then_cast() {
        let rows: Vec<Vec<String>> =
            vec![vec!["90 min".into()], vec!["1 hr. 30 min.".into()], vec!["100 min".into()]];
        let table = Table::from_text_rows(&["duration"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Float);
        // Appendix B: both spellings become the float 90.
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::Float(90.0));
        assert_eq!(cleaned.cell(1, 0).unwrap(), &Value::Float(90.0));
        assert_eq!(cleaned.cell(2, 0).unwrap(), &Value::Float(100.0));
    }

    #[test]
    fn integer_column_cast() {
        let rows: Vec<Vec<String>> = (1..=20).map(|i| vec![i.to_string()]).collect();
        let table = Table::from_text_rows(&["count"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Int);
    }

    #[test]
    fn free_text_stays_text() {
        let rows: Vec<Vec<String>> = vec![vec!["alice".into()], vec!["bob".into()]];
        let table = Table::from_text_rows(&["name"], &rows).unwrap();
        let (cleaned, ops) = run_on(table.clone());
        assert!(ops.is_empty());
        assert_eq!(cleaned, table);
    }

    #[test]
    fn zip_codes_stay_text() {
        let rows: Vec<Vec<String>> = vec![vec!["35233".into()], vec!["02139".into()]];
        let table = Table::from_text_rows(&["zip_code"], &rows).unwrap();
        let (cleaned, ops) = run_on(table);
        assert!(ops.is_empty());
        assert_eq!(cleaned.schema().field(0).unwrap().data_type(), DataType::Text);
    }

    #[test]
    fn destructive_cast_abandoned() {
        // A (scripted) model wrongly suggests BIGINT for free text; the
        // cast would null most values, so the pipeline abandons it.
        use cocoon_llm::ScriptedLlm;
        let rows: Vec<Vec<String>> =
            vec![vec!["hello".into()], vec!["world".into()], vec!["7".into()]];
        let table = Table::from_text_rows(&["stuff"], &rows).unwrap();
        let llm = ScriptedLlm::new([
            r#"{"Reasoning": "looks numeric", "Type": "BIGINT"}"#,
            "```yml\nexplanation: >\n  nothing converts\nmapping:\n```\n",
        ]);
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table.clone(), &llm, &config, &mut hook);
        run(&mut state);
        assert!(state.ops.is_empty());
        assert!(state.notes.iter().any(|n| n.contains("abandoned")));
        assert_eq!(state.table, table);
    }
}
