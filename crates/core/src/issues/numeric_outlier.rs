//! §2.1.5 Numeric Outliers.
//!
//! Statistical detection captures min/max (and quartiles); the LLM reviews
//! the acceptable range semantically; cleaning thresholds with a
//! `CASE WHEN` that nulls values outside the range.
//!
//! Runs after the column-type step (§2.1 ordering note: "Only when the
//! column is cast … can we show the distribution for numeric outliers").
//! Detect phase (concurrent, per numeric column): profile → range prompt →
//! offender count. Decide phase (sequential): hook review → SQL → apply.

use crate::apply::{apply_and_count, column_rewrite_select};
use crate::decision::{Decision, DetectionReview};
use crate::ops::{CleaningOp, Confidence, IssueKind};
use crate::state::{DetectCtx, Outcome, PipelineState};
use cocoon_llm::{parse_range_verdict, prompts};
use cocoon_profile::numeric_profile;
use cocoon_sql::{BinaryOp, Expr};

struct Finding {
    column: String,
    evidence: String,
    reasoning: String,
    low: Option<f64>,
    high: Option<f64>,
    confidence: Option<f64>,
}

fn degraded(column: &str, err: &crate::error::CoreError) -> String {
    format!("numeric outliers on {column:?} degraded to statistical-only: {err}")
}

/// Runs numeric-outlier review over every numeric column.
pub fn run(state: &mut PipelineState<'_>) {
    let outcomes = state.detect_columns(detect_column);
    state.decide_outcomes(outcomes, decide, |finding, err| degraded(&finding.column, err));
}

fn detect_column(ctx: &DetectCtx<'_>, index: usize) -> Outcome<Finding> {
    let Ok(field) = ctx.table.schema().field(index) else { return Outcome::Clean };
    if !field.data_type().is_numeric() {
        return Outcome::Clean;
    }
    let column = field.name().to_string();
    match detect_inner(ctx, index, &column) {
        Ok(outcome) => outcome,
        Err(err) => Outcome::Note(degraded(&column, &err)),
    }
}

fn detect_inner(
    ctx: &DetectCtx<'_>,
    index: usize,
    column: &str,
) -> crate::error::Result<Outcome<Finding>> {
    let numeric = match ctx.column_profile(index) {
        Some(profile) => profile.numeric.clone(),
        None => numeric_profile(ctx.table.column(index)?),
    };
    let Some(profile) = numeric else {
        return Ok(Outcome::Clean);
    };
    let response = ctx.ask(prompts::numeric_range(
        column,
        profile.stats.min,
        profile.stats.max,
        profile.stats.q1,
        profile.stats.q3,
    ))?;
    let verdict = parse_range_verdict(&response)?;
    let (low, high) = (verdict.low, verdict.high);
    if low.is_none() && high.is_none() {
        return Ok(Outcome::Clean);
    }

    // Count offenders before committing to an op.
    let offenders = ctx
        .table
        .column(index)?
        .non_null()
        .filter_map(|v| v.as_f64())
        .filter(|x| low.is_some_and(|l| *x < l) || high.is_some_and(|h| *x > h))
        .count();
    if offenders == 0 {
        return Ok(Outcome::Clean);
    }
    let evidence = format!(
        "observed range [{}, {}]; {} values outside accepted [{}, {}]",
        profile.stats.min,
        profile.stats.max,
        offenders,
        low.map(|v| v.to_string()).unwrap_or_else(|| "-∞".into()),
        high.map(|v| v.to_string()).unwrap_or_else(|| "+∞".into()),
    );
    Ok(Outcome::Finding(Finding {
        column: column.to_string(),
        evidence,
        reasoning: verdict.reasoning,
        low,
        high,
        confidence: verdict.confidence,
    }))
}

fn decide(state: &mut PipelineState<'_>, finding: &Finding) -> crate::error::Result<()> {
    let column = finding.column.as_str();
    let detection = DetectionReview {
        issue: IssueKind::NumericOutliers,
        column: Some(column),
        statistical_evidence: &finding.evidence,
        llm_reasoning: &finding.reasoning,
    };
    if state.hook.review_detection(&detection) == Decision::Reject {
        state.note(format!("numeric outliers on {column:?} rejected by reviewer"));
        return Ok(());
    }

    // CASE WHEN col < low OR col > high THEN NULL ELSE col END
    let mut condition: Option<Expr> = None;
    if let Some(l) = finding.low {
        condition = Some(Expr::binary(BinaryOp::Lt, Expr::col(column), Expr::lit(l)));
    }
    if let Some(h) = finding.high {
        let gt = Expr::binary(BinaryOp::Gt, Expr::col(column), Expr::lit(h));
        condition = Some(match condition {
            Some(c) => Expr::or(c, gt),
            None => gt,
        });
    }
    let expr = Expr::Case {
        operand: None,
        arms: vec![(condition.expect("at least one bound"), Expr::null())],
        otherwise: Some(Box::new(Expr::col(column))),
    };
    let select = column_rewrite_select(&state.table, column, expr);
    let (table, changed) = apply_and_count(&select, &state.table)?;
    if changed == 0 {
        return Ok(());
    }
    state.commit_op(
        table,
        CleaningOp {
            issue: IssueKind::NumericOutliers,
            column: Some(column.to_string()),
            statistical_evidence: finding.evidence.clone(),
            llm_reasoning: finding.reasoning.clone(),
            sql: select,
            cells_changed: changed,
            confidence: Confidence::self_reported(finding.confidence),
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanerConfig;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;
    use cocoon_table::{DataType, Table, Value};

    fn numeric_table(name: &str, values: &[f64]) -> Table {
        let rows: Vec<Vec<String>> = values.iter().map(|v| vec![v.to_string()]).collect();
        let mut t = Table::from_text_rows(&[name], &rows).unwrap();
        t.set_column_type(0, DataType::Float).unwrap();
        t.column_mut(0).unwrap().try_cast_all(DataType::Float);
        t
    }

    fn run_on(table: Table) -> (Table, Vec<CleaningOp>) {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table, &llm, &config, &mut hook);
        run(&mut state);
        (state.table, state.ops)
    }

    #[test]
    fn rating_outlier_nulled_by_domain_knowledge() {
        // imdb-style rating column: 99 is impossible.
        let (cleaned, ops) = run_on(numeric_table("rating", &[7.5, 8.0, 6.5, 99.0, 5.0]));
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.cell(3, 0).unwrap(), &Value::Null);
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::Float(7.5));
        assert!(ops[0].rendered_sql().contains("THEN NULL"));
    }

    #[test]
    fn far_out_statistical_outlier_nulled_without_domain_cue() {
        let mut values: Vec<f64> = (1..=50).map(f64::from).collect();
        values.push(1_000_000.0);
        let (cleaned, ops) = run_on(numeric_table("mystery", &values));
        assert_eq!(ops.len(), 1);
        assert_eq!(cleaned.cell(50, 0).unwrap(), &Value::Null);
    }

    #[test]
    fn in_range_column_untouched() {
        let (cleaned, ops) = run_on(numeric_table("rating", &[7.5, 8.0, 6.5]));
        assert!(ops.is_empty());
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::Float(7.5));
    }

    #[test]
    fn text_columns_skipped() {
        let rows: Vec<Vec<String>> = vec![vec!["a".into()]];
        let table = Table::from_text_rows(&["x"], &rows).unwrap();
        let (_, ops) = run_on(table);
        assert!(ops.is_empty());
    }
}
