//! Pipeline configuration, including the serialisable wire form a cleaning
//! service accepts (`CleanerConfig::from_json` / `to_json`).

use crate::error::{CoreError, Result};
use cocoon_llm::Json;
use cocoon_profile::ProfileOptions;

/// Which issue types (§2.1.1–2.1.8) the pipeline runs. All on by default;
/// the ablation benches toggle these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueToggles {
    /// §2.1.1 — rare string values that are typos of frequent ones.
    pub string_outliers: bool,
    /// §2.1.2 — values breaking the column's dominant character pattern.
    pub pattern_outliers: bool,
    /// §2.1.3 — sentinel strings standing in for NULL ("N/A", "-").
    pub disguised_missing: bool,
    /// §2.1.4 — text columns that should be typed (int, date, …).
    pub column_type: bool,
    /// §2.1.5 — numeric values outside plausible bounds.
    pub numeric_outliers: bool,
    /// §2.1.6 — rows violating discovered functional dependencies.
    pub functional_dependencies: bool,
    /// §2.1.7 — exact duplicate rows.
    pub duplication: bool,
    /// §2.1.8 — duplicate values in key-like columns.
    pub uniqueness: bool,
}

impl Default for IssueToggles {
    fn default() -> Self {
        IssueToggles {
            string_outliers: true,
            pattern_outliers: true,
            disguised_missing: true,
            column_type: true,
            numeric_outliers: true,
            functional_dependencies: true,
            duplication: true,
            uniqueness: true,
        }
    }
}

/// Tunables of the cleaning pipeline; defaults follow the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanerConfig {
    /// Frequent distinct values sampled for string-outlier review
    /// (paper default 1000).
    pub sample_size: usize,
    /// Distinct values cleaned per LLM call (paper default 1000).
    pub batch_size: usize,
    /// Minimum entropy strength for FD candidates handed to the LLM.
    pub fd_min_strength: f64,
    /// Key-likeness cutoff for FD left-hand sides.
    pub fd_max_unique_ratio: f64,
    /// Type-inference tolerance (fraction of values that must parse).
    pub type_tolerance: f64,
    /// Unique-ratio threshold above which a column is reviewed for
    /// semantic uniqueness (§2.1.8).
    pub uniqueness_review_threshold: f64,
    /// Minimum combined [`Confidence`](crate::Confidence) score a repair
    /// needs to apply automatically. Repairs scoring below are **withheld**:
    /// the table is left untouched and the op lands in
    /// [`CleaningRun::pending`](crate::CleaningRun::pending) for
    /// human-in-the-loop review (`/v1/reviews` on `cocoon-server`). The
    /// default `0.0` applies everything — confidence stays purely
    /// observational until a policy opts in.
    pub confidence_threshold: f64,
    /// Which issues run.
    pub issues: IssueToggles,
    /// Include statistical profiles in prompts (ablation: the paper's claim
    /// is that statistics give the LLM context; turning this off degrades
    /// detection).
    pub statistical_context: bool,
    /// Worker threads for the per-stage detection fan-out. `None` defers to
    /// the `COCOON_THREADS` environment variable, falling back to the
    /// machine's available parallelism.
    ///
    /// With a model whose answers are a pure function of the prompt
    /// (`SimLlm`, `CachedLlm` over one) output is byte-identical at any
    /// thread count — threads only trade wall-clock for cores. Models with
    /// call-order state (`ScriptedLlm`'s positional script, a sampling API
    /// backend) lose that guarantee above 1 thread, because concurrent
    /// detection workers consume answers in completion order; pin
    /// `threads: Some(1)` to script multi-column interactions.
    pub threads: Option<usize>,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            sample_size: 1000,
            batch_size: 1000,
            fd_min_strength: 0.6,
            fd_max_unique_ratio: 0.95,
            type_tolerance: 0.90,
            uniqueness_review_threshold: 0.95,
            confidence_threshold: 0.0,
            issues: IssueToggles::default(),
            statistical_context: true,
            threads: None,
        }
    }
}

impl CleanerConfig {
    /// Validates ranges, returning self for chaining.
    pub fn validated(self) -> Result<Self> {
        if self.sample_size == 0 {
            return Err(CoreError::Config("sample_size must be positive".into()));
        }
        if self.threads == Some(0) {
            return Err(CoreError::Config("threads must be positive when set".into()));
        }
        for (name, v) in [
            ("fd_min_strength", self.fd_min_strength),
            ("fd_max_unique_ratio", self.fd_max_unique_ratio),
            ("type_tolerance", self.type_tolerance),
            ("uniqueness_review_threshold", self.uniqueness_review_threshold),
            ("confidence_threshold", self.confidence_threshold),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::Config(format!("{name} must be in [0,1], got {v}")));
            }
        }
        Ok(self)
    }

    /// Builds a config from its JSON wire form: the paper defaults overlaid
    /// with whatever subset of fields the object provides, then validated.
    ///
    /// This is the request-config format of `cocoon-server`'s clean
    /// endpoints. Partial objects are the norm (`{"threads": 1}` pins the
    /// fan-out, everything else stays default); unknown keys are rejected
    /// so client typos fail loudly instead of silently running defaults.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut config = CleanerConfig::default();
        let Some(members) = json.as_object() else {
            return Err(CoreError::Config(format!("config must be a JSON object, got {json}")));
        };
        for (key, value) in members {
            match key.as_str() {
                "sample_size" => config.sample_size = usize_field(key, value)?,
                "batch_size" => config.batch_size = usize_field(key, value)?,
                "fd_min_strength" => config.fd_min_strength = f64_field(key, value)?,
                "fd_max_unique_ratio" => config.fd_max_unique_ratio = f64_field(key, value)?,
                "type_tolerance" => config.type_tolerance = f64_field(key, value)?,
                "uniqueness_review_threshold" => {
                    config.uniqueness_review_threshold = f64_field(key, value)?
                }
                "confidence_threshold" => config.confidence_threshold = f64_field(key, value)?,
                "statistical_context" => config.statistical_context = bool_field(key, value)?,
                "threads" => {
                    config.threads = match value {
                        Json::Null => None,
                        other => Some(usize_field(key, other)?),
                    }
                }
                "issues" => apply_issue_toggles(&mut config.issues, value)?,
                other => {
                    return Err(CoreError::Config(format!("unknown config field \"{other}\"")))
                }
            }
        }
        config.validated()
    }

    /// The JSON wire form of this config (round-trips through
    /// [`from_json`](Self::from_json)).
    pub fn to_json(&self) -> Json {
        let issues = Json::object([
            ("string_outliers".into(), Json::Bool(self.issues.string_outliers)),
            ("pattern_outliers".into(), Json::Bool(self.issues.pattern_outliers)),
            ("disguised_missing".into(), Json::Bool(self.issues.disguised_missing)),
            ("column_type".into(), Json::Bool(self.issues.column_type)),
            ("numeric_outliers".into(), Json::Bool(self.issues.numeric_outliers)),
            ("functional_dependencies".into(), Json::Bool(self.issues.functional_dependencies)),
            ("duplication".into(), Json::Bool(self.issues.duplication)),
            ("uniqueness".into(), Json::Bool(self.issues.uniqueness)),
        ]);
        Json::object([
            ("sample_size".into(), Json::Number(self.sample_size as f64)),
            ("batch_size".into(), Json::Number(self.batch_size as f64)),
            ("fd_min_strength".into(), Json::Number(self.fd_min_strength)),
            ("fd_max_unique_ratio".into(), Json::Number(self.fd_max_unique_ratio)),
            ("type_tolerance".into(), Json::Number(self.type_tolerance)),
            ("uniqueness_review_threshold".into(), Json::Number(self.uniqueness_review_threshold)),
            ("confidence_threshold".into(), Json::Number(self.confidence_threshold)),
            ("statistical_context".into(), Json::Bool(self.statistical_context)),
            (
                "threads".into(),
                match self.threads {
                    Some(n) => Json::Number(n as f64),
                    None => Json::Null,
                },
            ),
            ("issues".into(), issues),
        ])
    }

    /// The profiling options this configuration implies — the bridge from
    /// pipeline thresholds to [`ProfileOptions`]. A prebuilt
    /// [`TableProfile`](cocoon_profile::TableProfile) is reusable by the
    /// pipeline only when it was computed under exactly these options
    /// (`TableProfile::matches` checks that); anything else is reprofiled.
    pub fn profile_options(&self) -> ProfileOptions {
        ProfileOptions {
            type_tolerance: self.type_tolerance,
            fd_min_strength: self.fd_min_strength,
            fd_max_unique_ratio: self.fd_max_unique_ratio,
            exact_patterns: true,
        }
    }

    /// A configuration with every semantic step disabled except `only` —
    /// used by ablations.
    pub fn only_issue(issue: &str) -> Self {
        let mut toggles = IssueToggles {
            string_outliers: false,
            pattern_outliers: false,
            disguised_missing: false,
            column_type: false,
            numeric_outliers: false,
            functional_dependencies: false,
            duplication: false,
            uniqueness: false,
        };
        match issue {
            "string_outliers" => toggles.string_outliers = true,
            "pattern_outliers" => toggles.pattern_outliers = true,
            "disguised_missing" => toggles.disguised_missing = true,
            "column_type" => toggles.column_type = true,
            "numeric_outliers" => toggles.numeric_outliers = true,
            "functional_dependencies" => toggles.functional_dependencies = true,
            "duplication" => toggles.duplication = true,
            "uniqueness" => toggles.uniqueness = true,
            _ => {}
        }
        CleanerConfig { issues: toggles, ..CleanerConfig::default() }
    }
}

fn bool_field(key: &str, value: &Json) -> Result<bool> {
    value
        .as_bool()
        .ok_or_else(|| CoreError::Config(format!("\"{key}\" must be a boolean, got {value}")))
}

fn f64_field(key: &str, value: &Json) -> Result<f64> {
    value
        .as_f64()
        .ok_or_else(|| CoreError::Config(format!("\"{key}\" must be a number, got {value}")))
}

fn usize_field(key: &str, value: &Json) -> Result<usize> {
    let n = f64_field(key, value)?;
    if n < 0.0 || n.fract() != 0.0 || n > usize::MAX as f64 {
        return Err(CoreError::Config(format!(
            "\"{key}\" must be a non-negative integer, got {value}"
        )));
    }
    Ok(n as usize)
}

fn apply_issue_toggles(toggles: &mut IssueToggles, json: &Json) -> Result<()> {
    let Some(members) = json.as_object() else {
        return Err(CoreError::Config(format!("\"issues\" must be a JSON object, got {json}")));
    };
    for (key, value) in members {
        let on = bool_field(key, value)?;
        match key.as_str() {
            "string_outliers" => toggles.string_outliers = on,
            "pattern_outliers" => toggles.pattern_outliers = on,
            "disguised_missing" => toggles.disguised_missing = on,
            "column_type" => toggles.column_type = on,
            "numeric_outliers" => toggles.numeric_outliers = on,
            "functional_dependencies" => toggles.functional_dependencies = on,
            "duplication" => toggles.duplication = on,
            "uniqueness" => toggles.uniqueness = on,
            other => return Err(CoreError::Config(format!("unknown issue toggle \"{other}\""))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = CleanerConfig::default();
        assert_eq!(c.sample_size, 1000);
        assert_eq!(c.batch_size, 1000);
        assert!(c.issues.string_outliers && c.issues.uniqueness);
    }

    #[test]
    fn validation() {
        assert!(CleanerConfig::default().validated().is_ok());
        let bad = CleanerConfig { sample_size: 0, ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let bad = CleanerConfig { fd_min_strength: 1.5, ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let bad = CleanerConfig { confidence_threshold: 1.5, ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let ok = CleanerConfig { confidence_threshold: 0.9, ..CleanerConfig::default() };
        assert!(ok.validated().is_ok());
        let bad = CleanerConfig { threads: Some(0), ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let ok = CleanerConfig { threads: Some(8), ..CleanerConfig::default() };
        assert!(ok.validated().is_ok());
    }

    #[test]
    fn json_round_trip_preserves_config() {
        let config = CleanerConfig {
            sample_size: 42,
            threads: Some(3),
            statistical_context: false,
            confidence_threshold: 0.75,
            issues: CleanerConfig::only_issue("column_type").issues,
            ..CleanerConfig::default()
        };
        let round = CleanerConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(round, config);
    }

    #[test]
    fn partial_json_overlays_defaults() {
        let json = cocoon_llm::json::parse(
            r#"{"threads": 1, "issues": {"functional_dependencies": false}}"#,
        )
        .unwrap();
        let config = CleanerConfig::from_json(&json).unwrap();
        assert_eq!(config.threads, Some(1));
        assert!(!config.issues.functional_dependencies);
        // Everything else keeps the paper defaults.
        assert_eq!(config.sample_size, 1000);
        assert!(config.issues.string_outliers);
    }

    #[test]
    fn empty_object_is_the_default_config() {
        let json = cocoon_llm::json::parse("{}").unwrap();
        assert_eq!(CleanerConfig::from_json(&json).unwrap(), CleanerConfig::default());
    }

    #[test]
    fn bad_json_configs_are_rejected() {
        for (raw, why) in [
            (r#"[1, 2]"#, "not an object"),
            (r#"{"sample_szie": 10}"#, "unknown field"),
            (r#"{"sample_size": "ten"}"#, "wrong type"),
            (r#"{"sample_size": 2.5}"#, "non-integer"),
            (r#"{"threads": -1}"#, "negative"),
            (r#"{"threads": 0}"#, "validation: zero threads"),
            (r#"{"fd_min_strength": 3.0}"#, "validation: out of range"),
            (r#"{"confidence_threshold": -0.5}"#, "validation: threshold out of range"),
            (r#"{"confidence_threshold": "high"}"#, "threshold wrong type"),
            (r#"{"issues": {"string_outliers": "yes"}}"#, "toggle wrong type"),
            (r#"{"issues": {"nope": true}}"#, "unknown toggle"),
            (r#"{"issues": [true]}"#, "toggles not an object"),
        ] {
            let json = cocoon_llm::json::parse(raw).unwrap();
            assert!(CleanerConfig::from_json(&json).is_err(), "{why}: {raw}");
        }
    }

    #[test]
    fn null_threads_means_environment_default() {
        let json = cocoon_llm::json::parse(r#"{"threads": null}"#).unwrap();
        assert_eq!(CleanerConfig::from_json(&json).unwrap().threads, None);
    }

    #[test]
    fn profile_options_mirror_pipeline_thresholds() {
        let config = CleanerConfig {
            type_tolerance: 0.5,
            fd_min_strength: 0.7,
            fd_max_unique_ratio: 0.8,
            ..CleanerConfig::default()
        };
        let options = config.profile_options();
        assert_eq!(options.type_tolerance, 0.5);
        assert_eq!(options.fd_min_strength, 0.7);
        assert_eq!(options.fd_max_unique_ratio, 0.8);
        assert!(options.exact_patterns);
    }

    #[test]
    fn only_issue_isolates() {
        let c = CleanerConfig::only_issue("column_type");
        assert!(c.issues.column_type);
        assert!(!c.issues.string_outliers);
        assert!(!c.issues.functional_dependencies);
    }
}
