//! Pipeline configuration.

use crate::error::{CoreError, Result};

/// Which issue types (§2.1.1–2.1.8) the pipeline runs. All on by default;
/// the ablation benches toggle these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueToggles {
    pub string_outliers: bool,
    pub pattern_outliers: bool,
    pub disguised_missing: bool,
    pub column_type: bool,
    pub numeric_outliers: bool,
    pub functional_dependencies: bool,
    pub duplication: bool,
    pub uniqueness: bool,
}

impl Default for IssueToggles {
    fn default() -> Self {
        IssueToggles {
            string_outliers: true,
            pattern_outliers: true,
            disguised_missing: true,
            column_type: true,
            numeric_outliers: true,
            functional_dependencies: true,
            duplication: true,
            uniqueness: true,
        }
    }
}

/// Tunables of the cleaning pipeline; defaults follow the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanerConfig {
    /// Frequent distinct values sampled for string-outlier review
    /// (paper default 1000).
    pub sample_size: usize,
    /// Distinct values cleaned per LLM call (paper default 1000).
    pub batch_size: usize,
    /// Minimum entropy strength for FD candidates handed to the LLM.
    pub fd_min_strength: f64,
    /// Key-likeness cutoff for FD left-hand sides.
    pub fd_max_unique_ratio: f64,
    /// Type-inference tolerance (fraction of values that must parse).
    pub type_tolerance: f64,
    /// Unique-ratio threshold above which a column is reviewed for
    /// semantic uniqueness (§2.1.8).
    pub uniqueness_review_threshold: f64,
    /// Which issues run.
    pub issues: IssueToggles,
    /// Include statistical profiles in prompts (ablation: the paper's claim
    /// is that statistics give the LLM context; turning this off degrades
    /// detection).
    pub statistical_context: bool,
    /// Worker threads for the per-stage detection fan-out. `None` defers to
    /// the `COCOON_THREADS` environment variable, falling back to the
    /// machine's available parallelism.
    ///
    /// With a model whose answers are a pure function of the prompt
    /// (`SimLlm`, `CachedLlm` over one) output is byte-identical at any
    /// thread count — threads only trade wall-clock for cores. Models with
    /// call-order state (`ScriptedLlm`'s positional script, a sampling API
    /// backend) lose that guarantee above 1 thread, because concurrent
    /// detection workers consume answers in completion order; pin
    /// `threads: Some(1)` to script multi-column interactions.
    pub threads: Option<usize>,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            sample_size: 1000,
            batch_size: 1000,
            fd_min_strength: 0.6,
            fd_max_unique_ratio: 0.95,
            type_tolerance: 0.90,
            uniqueness_review_threshold: 0.95,
            issues: IssueToggles::default(),
            statistical_context: true,
            threads: None,
        }
    }
}

impl CleanerConfig {
    /// Validates ranges, returning self for chaining.
    pub fn validated(self) -> Result<Self> {
        if self.sample_size == 0 {
            return Err(CoreError::Config("sample_size must be positive".into()));
        }
        if self.threads == Some(0) {
            return Err(CoreError::Config("threads must be positive when set".into()));
        }
        for (name, v) in [
            ("fd_min_strength", self.fd_min_strength),
            ("fd_max_unique_ratio", self.fd_max_unique_ratio),
            ("type_tolerance", self.type_tolerance),
            ("uniqueness_review_threshold", self.uniqueness_review_threshold),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::Config(format!("{name} must be in [0,1], got {v}")));
            }
        }
        Ok(self)
    }

    /// A configuration with every semantic step disabled except `only` —
    /// used by ablations.
    pub fn only_issue(issue: &str) -> Self {
        let mut toggles = IssueToggles {
            string_outliers: false,
            pattern_outliers: false,
            disguised_missing: false,
            column_type: false,
            numeric_outliers: false,
            functional_dependencies: false,
            duplication: false,
            uniqueness: false,
        };
        match issue {
            "string_outliers" => toggles.string_outliers = true,
            "pattern_outliers" => toggles.pattern_outliers = true,
            "disguised_missing" => toggles.disguised_missing = true,
            "column_type" => toggles.column_type = true,
            "numeric_outliers" => toggles.numeric_outliers = true,
            "functional_dependencies" => toggles.functional_dependencies = true,
            "duplication" => toggles.duplication = true,
            "uniqueness" => toggles.uniqueness = true,
            _ => {}
        }
        CleanerConfig { issues: toggles, ..CleanerConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = CleanerConfig::default();
        assert_eq!(c.sample_size, 1000);
        assert_eq!(c.batch_size, 1000);
        assert!(c.issues.string_outliers && c.issues.uniqueness);
    }

    #[test]
    fn validation() {
        assert!(CleanerConfig::default().validated().is_ok());
        let bad = CleanerConfig { sample_size: 0, ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let bad = CleanerConfig { fd_min_strength: 1.5, ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let bad = CleanerConfig { threads: Some(0), ..CleanerConfig::default() };
        assert!(bad.validated().is_err());
        let ok = CleanerConfig { threads: Some(8), ..CleanerConfig::default() };
        assert!(ok.validated().is_ok());
    }

    #[test]
    fn only_issue_isolates() {
        let c = CleanerConfig::only_issue("column_type");
        assert!(c.issues.column_type);
        assert!(!c.issues.string_outliers);
        assert!(!c.issues.functional_dependencies);
    }
}
