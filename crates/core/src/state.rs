//! Pipeline state and the detect/decide execution model.
//!
//! Every issue stage is split in two:
//!
//! * a **detect** phase — read-only against the table as it stood when the
//!   stage began. Each unit of detection (a column, an FD candidate) runs
//!   as an independent task on the stage's thread pool; tasks profile,
//!   prompt the LLM, and assemble candidate findings (`Outcome::Finding`).
//!   Results come back in submission order, so output never depends on
//!   worker scheduling.
//! * a **decide** phase — sequential and ordered. Findings pass through the
//!   [`DecisionHook`] reviews, compile to SQL, and are applied one at a
//!   time; `ops` and `notes` record them in deterministic order.
//!
//! [`PipelineState`] is the mutable half threaded through the decide
//! phases; [`DetectCtx`] is the shared read-only view handed to detection
//! workers.

use crate::config::CleanerConfig;
use crate::decision::DecisionHook;
use crate::error::Result;
use crate::ops::CleaningOp;
use crate::progress::RunProgress;
use cocoon_llm::responses::parse_repair_verdict;
use cocoon_llm::{prompts, ChatModel, ChatRequest};
use cocoon_profile::{ColumnProfile, TableProfile};
use cocoon_sql::render_select;
use cocoon_table::Table;
use threadpool::ThreadPool;

/// Read-only view for concurrent detection: the stage-entry table, the
/// (thread-safe) model, and the configuration. Cheap to share by reference
/// across detection workers.
pub struct DetectCtx<'a> {
    /// The table as it stood when the stage began.
    pub table: &'a Table,
    /// The model answering detection prompts.
    pub llm: &'a dyn ChatModel,
    /// Pipeline configuration (thresholds, toggles).
    pub config: &'a CleanerConfig,
    /// The run's entry profile, served only while the table still *is* the
    /// profiled entry table (no op applied yet). Stages prefer these
    /// prebuilt statistics over reprofiling their columns; once an op
    /// mutates the table this is `None` and stages recompute as before.
    pub profile: Option<&'a TableProfile>,
}

impl DetectCtx<'_> {
    /// Sends a prompt and returns the completion text.
    pub fn ask(&self, prompt: String) -> Result<String> {
        Ok(self.llm.complete(&ChatRequest::simple(prompt))?.content)
    }

    /// Sends a batch of prompts through [`ChatModel::complete_batch`] so
    /// batching-capable backends (caches, hosted APIs) see the whole set.
    pub fn ask_batch(&self, prompts: Vec<String>) -> Vec<Result<String>> {
        let requests: Vec<ChatRequest> = prompts.into_iter().map(ChatRequest::simple).collect();
        self.llm
            .complete_batch(&requests)
            .into_iter()
            .map(|r| r.map(|resp| resp.content).map_err(Into::into))
            .collect()
    }

    /// Distinct-value census of a column (rendered text, ordered by
    /// descending frequency), truncated to `limit` values. When
    /// [`CleanerConfig::statistical_context`] is off, counts are erased to 1
    /// — the ablation of the paper's "statistics give the LLM context"
    /// claim.
    pub fn census(&self, column_index: usize, limit: usize) -> Vec<(String, usize)> {
        let column = match self.table.column(column_index) {
            Ok(c) => c,
            Err(_) => return Vec::new(),
        };
        let mut out: Vec<(String, usize)> = column
            .distinct_by_frequency()
            .into_iter()
            .take(limit)
            .map(|(v, c)| (v.render(), if self.config.statistical_context { c } else { 1 }))
            .collect();
        if !self.config.statistical_context {
            // Without statistics the model sees values in an arbitrary but
            // deterministic order rather than frequency-ranked.
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out
    }

    /// The entry profile's statistics for one column, when still valid
    /// (see [`DetectCtx::profile`]). Columns are in schema order, so the
    /// index is the table's column index.
    pub fn column_profile(&self, index: usize) -> Option<&ColumnProfile> {
        self.profile.and_then(|profile| profile.columns.get(index))
    }
}

/// What one read-only detection unit concluded, queued for the decide phase.
pub(crate) enum Outcome<F> {
    /// Nothing to report.
    Clean,
    /// No finding, but a note for the run report (degraded step, FD judged
    /// not meaningful, unknown type suggestion).
    Note(String),
    /// A candidate finding awaiting review and application.
    Finding(F),
}

/// State shared by all issue steps while a table is being cleaned.
pub struct PipelineState<'a> {
    /// The table, progressively rewritten by each applied op.
    pub table: Table,
    /// The model consulted by detection and cleaning prompts.
    pub llm: &'a dyn ChatModel,
    /// Pipeline configuration (thresholds, toggles).
    pub config: &'a CleanerConfig,
    /// Human-in-the-loop decision boundary.
    pub hook: &'a mut dyn DecisionHook,
    /// Worker policy for the per-stage detection fan-out.
    pub pool: ThreadPool,
    /// Statistical profile of the table as the run began — computed
    /// chunk-parallel up front (or handed in by a streaming ingester) and
    /// served to detection workers until the first op invalidates it.
    pub entry_profile: Option<TableProfile>,
    /// Applied operations, in order.
    pub ops: Vec<CleaningOp>,
    /// Repairs whose confidence fell below
    /// [`CleanerConfig::confidence_threshold`]: fully compiled but **not**
    /// applied, queued for human review (`/v1/reviews` on the server).
    pub pending: Vec<CleaningOp>,
    /// Narrative notes: rejected FDs, skipped steps, LLM failures.
    pub notes: Vec<String>,
    /// Progress channel of the run, when observed: detect fan-outs report
    /// their wall time here so stage timings can split detect from decide.
    pub progress: Option<&'a RunProgress>,
}

impl<'a> PipelineState<'a> {
    /// Fresh state for one cleaning run over `table`.
    pub fn new(
        table: Table,
        llm: &'a dyn ChatModel,
        config: &'a CleanerConfig,
        hook: &'a mut dyn DecisionHook,
    ) -> Self {
        let pool = match config.threads {
            Some(n) => ThreadPool::new(n),
            None => ThreadPool::from_env(),
        };
        PipelineState {
            table,
            llm,
            config,
            hook,
            pool,
            entry_profile: None,
            ops: Vec::new(),
            pending: Vec::new(),
            notes: Vec::new(),
            progress: None,
        }
    }

    /// The read-only view detection workers receive. Borrows the *current*
    /// table: stages construct it once, before their decide phase mutates
    /// anything, so every detection unit of a stage sees the same snapshot.
    pub fn detect_ctx(&self) -> DetectCtx<'_> {
        // The entry profile describes the table as the run began; serve it
        // only while no applied op can have mutated the table.
        let profile = if self.ops.is_empty() { self.entry_profile.as_ref() } else { None };
        DetectCtx { table: &self.table, llm: self.llm, config: self.config, profile }
    }

    /// Fans `detect` out over `items` on the stage pool and returns the
    /// outcomes in submission order (the determinism contract: outcome `i`
    /// is always `detect(ctx, items[i])`, whatever the thread count).
    pub(crate) fn detect_map<T, R>(
        &self,
        items: Vec<T>,
        detect: impl Fn(&DetectCtx<'_>, T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let ctx = self.detect_ctx();
        let started = std::time::Instant::now();
        let out = self.pool.map_ordered(items, |item| detect(&ctx, item));
        if let Some(progress) = self.progress {
            progress.add_detect_time(started.elapsed());
        }
        out
    }

    /// Fans a per-column detection function out across every column.
    pub(crate) fn detect_columns<R: Send>(
        &self,
        detect: impl Fn(&DetectCtx<'_>, usize) -> R + Sync,
    ) -> Vec<R> {
        self.detect_map((0..self.table.width()).collect(), detect)
    }

    /// The decide phase shared by the per-column stages: outcomes are
    /// consumed in detection order, notes pass straight through, findings
    /// go to `decide`, and a decide-phase error degrades the finding to
    /// the stage's note via `degraded_note`. (FD and duplication keep
    /// bespoke loops — cross-finding state and single-unit detection.)
    pub(crate) fn decide_outcomes<F>(
        &mut self,
        outcomes: Vec<Outcome<F>>,
        mut decide: impl FnMut(&mut Self, &F) -> Result<()>,
        degraded_note: impl Fn(&F, &crate::error::CoreError) -> String,
    ) {
        for outcome in outcomes {
            match outcome {
                Outcome::Clean => {}
                Outcome::Note(note) => self.note(note),
                Outcome::Finding(finding) => {
                    if let Err(err) = decide(self, &finding) {
                        self.note(degraded_note(&finding, &err));
                    }
                }
            }
        }
    }

    /// Sends a prompt and returns the completion text (decide-phase calls;
    /// detection workers use [`DetectCtx::ask`]).
    pub fn ask(&self, prompt: String) -> Result<String> {
        Ok(self.llm.complete(&ChatRequest::simple(prompt))?.content)
    }

    /// Distinct-value census of a column; see [`DetectCtx::census`].
    pub fn census(&self, column_index: usize, limit: usize) -> Vec<(String, usize)> {
        self.detect_ctx().census(column_index, limit)
    }

    /// Records a note for the run report.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Commits a compiled repair through the confidence policy: a
    /// deterministically sampled subset is first re-verified through
    /// [`prompts::repair_verify`] variants (one model batch, so a
    /// coalescing dispatcher sees a single flight) and the agreement
    /// fraction is blended into the op's [`Confidence`](crate::Confidence).
    /// Repairs scoring at or above [`CleanerConfig::confidence_threshold`]
    /// apply (`table` replaces the working table, the op is recorded);
    /// repairs below are withheld into [`pending`](PipelineState::pending)
    /// with a note, leaving the table untouched.
    ///
    /// Returns whether the repair applied (`false` means withheld) — FD
    /// iteration uses this to know the table is unchanged.
    ///
    /// Runs in the sequential decide phase, so sampling and re-asks are
    /// identical at any thread count.
    pub fn commit_op(&mut self, table: Table, mut op: CleaningOp) -> bool {
        if sampled_for_verification(&op) {
            let sql_text = render_select(&op.sql);
            let requests: Vec<ChatRequest> = (0..VERIFY_VARIANTS)
                .map(|variant| {
                    ChatRequest::simple(prompts::repair_verify(
                        op.issue.name(),
                        op.column.as_deref(),
                        &op.statistical_evidence,
                        &op.llm_reasoning,
                        &sql_text,
                        variant,
                    ))
                })
                .collect();
            let verdicts: Vec<bool> = self
                .llm
                .complete_batch(&requests)
                .into_iter()
                .filter_map(|r| r.ok())
                .filter_map(|resp| parse_repair_verdict(&resp.content).ok())
                .map(|v| v.agree)
                .collect();
            // All-failed re-asks leave agreement unsampled rather than
            // punishing the repair for a flaky backend.
            if !verdicts.is_empty() {
                let agree = verdicts.iter().filter(|&&a| a).count();
                op.confidence.agreement = Some(agree as f64 / verdicts.len() as f64);
            }
        }
        if op.confidence.score() >= self.config.confidence_threshold {
            self.table = table;
            self.ops.push(op);
            true
        } else {
            self.note(format!(
                "{} repair on {} withheld for review: confidence {} below threshold {:.2}",
                op.issue.name(),
                op.column.as_deref().map(|c| format!("{c:?}")).unwrap_or_else(|| "table".into()),
                op.confidence.describe(),
                self.config.confidence_threshold,
            ));
            self.pending.push(op);
            false
        }
    }
}

/// How many [`prompts::repair_verify`] variants an agreement re-ask sends.
const VERIFY_VARIANTS: usize = 3;

/// One in this many repairs is sampled for cross-variant verification.
const SAMPLE_MODULUS: u64 = 4;

/// Whether a repair is in the ~25% agreement sample: a pure function of the
/// op's identity (issue, column, evidence), so runs are reproducible across
/// machines and thread counts — no RNG anywhere in the pipeline.
fn sampled_for_verification(op: &CleaningOp) -> bool {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(op.issue.name().as_bytes());
    eat(b"\x1f");
    eat(op.column.as_deref().unwrap_or("").as_bytes());
    eat(b"\x1f");
    eat(op.statistical_evidence.as_bytes());
    hash.is_multiple_of(SAMPLE_MODULUS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;

    fn table() -> Table {
        let rows: Vec<Vec<String>> = vec![vec!["a".into()], vec!["a".into()], vec!["b".into()]];
        Table::from_text_rows(&["x"], &rows).unwrap()
    }

    #[test]
    fn census_orders_by_frequency() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let state = PipelineState::new(table(), &llm, &config, &mut hook);
        let census = state.census(0, 10);
        assert_eq!(census, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        assert!(state.census(9, 10).is_empty());
    }

    #[test]
    fn census_without_statistics_erases_counts() {
        let llm = SimLlm::new();
        let config = CleanerConfig { statistical_context: false, ..CleanerConfig::default() };
        let mut hook = AutoApprove;
        let state = PipelineState::new(table(), &llm, &config, &mut hook);
        let census = state.census(0, 10);
        assert!(census.iter().all(|(_, c)| *c == 1));
    }

    #[test]
    fn pool_size_follows_config() {
        let llm = SimLlm::new();
        let config = CleanerConfig { threads: Some(3), ..CleanerConfig::default() };
        let mut hook = AutoApprove;
        let state = PipelineState::new(table(), &llm, &config, &mut hook);
        assert_eq!(state.pool.threads(), 3);
    }

    #[test]
    fn detect_map_orders_results_at_any_thread_count() {
        let llm = SimLlm::new();
        let mut hook = AutoApprove;
        for threads in [1usize, 8] {
            let config = CleanerConfig { threads: Some(threads), ..CleanerConfig::default() };
            let state = PipelineState::new(table(), &llm, &config, &mut hook);
            let out = state.detect_map((0..32).collect::<Vec<usize>>(), |_, i| i * 2);
            assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn entry_profile_served_only_until_first_op() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table(), &llm, &config, &mut hook);
        assert!(state.detect_ctx().profile.is_none());
        state.entry_profile =
            Some(cocoon_profile::profile_table(&state.table, &config.profile_options()));
        assert!(state.detect_ctx().profile.is_some());
        assert!(state.detect_ctx().column_profile(0).is_some());
        assert!(state.detect_ctx().column_profile(9).is_none());
        // Any applied op invalidates the entry snapshot.
        state.ops.push(crate::ops::CleaningOp {
            issue: crate::ops::IssueKind::Duplication,
            column: None,
            statistical_evidence: String::new(),
            llm_reasoning: String::new(),
            sql: cocoon_sql::Select::star("input"),
            cells_changed: 0,
            confidence: crate::ops::Confidence::default(),
        });
        assert!(state.detect_ctx().profile.is_none());
    }

    #[test]
    fn commit_op_applies_or_withholds_by_threshold() {
        use crate::ops::{CleaningOp, Confidence, IssueKind};
        let op_with = |self_report: f64| CleaningOp {
            issue: IssueKind::StringOutliers,
            column: Some("x".into()),
            statistical_evidence: "evidence".into(),
            llm_reasoning: "reasoning".into(),
            sql: cocoon_sql::Select::star("input"),
            cells_changed: 1,
            confidence: Confidence { self_report, agreement: None },
        };
        let llm = SimLlm::new();
        let config = CleanerConfig { confidence_threshold: 0.9, ..CleanerConfig::default() };
        let mut hook = AutoApprove;
        let mut state = PipelineState::new(table(), &llm, &config, &mut hook);
        let rewritten = {
            let rows: Vec<Vec<String>> = vec![vec!["z".into()]];
            Table::from_text_rows(&["x"], &rows).unwrap()
        };
        // High self-report applies (agreement re-asks, if sampled, endorse).
        assert!(state.commit_op(rewritten.clone(), op_with(0.95)));
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.table, rewritten);
        // Low self-report is withheld: table untouched, op queued, noted.
        let before = state.table.clone();
        assert!(!state.commit_op(table(), op_with(0.3)));
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.table, before);
        assert!(state.notes.iter().any(|n| n.contains("withheld for review")));
    }

    #[test]
    fn verification_sampling_is_deterministic() {
        use crate::ops::{CleaningOp, Confidence, IssueKind};
        let op = |evidence: &str| CleaningOp {
            issue: IssueKind::StringOutliers,
            column: Some("x".into()),
            statistical_evidence: evidence.into(),
            llm_reasoning: String::new(),
            sql: cocoon_sql::Select::star("input"),
            cells_changed: 1,
            confidence: Confidence::default(),
        };
        // Pure function of op identity: same op, same answer, ~1/4 sampled.
        let sampled = (0..64)
            .filter(|i| super::sampled_for_verification(&op(&format!("evidence {i}"))))
            .count();
        assert!(sampled > 0 && sampled < 64, "{sampled} of 64 sampled");
        assert_eq!(
            super::sampled_for_verification(&op("evidence 0")),
            super::sampled_for_verification(&op("evidence 0")),
        );
    }

    #[test]
    fn detect_ctx_batch_ask() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let state = PipelineState::new(table(), &llm, &config, &mut hook);
        let ctx = state.detect_ctx();
        // SimLlm rejects free-form prompts: each slot carries its own error.
        let out = ctx.ask_batch(vec!["p1".into(), "p2".into()]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.is_err()));
    }
}
