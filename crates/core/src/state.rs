//! Mutable pipeline state threaded through the issue modules.

use crate::config::CleanerConfig;
use crate::decision::DecisionHook;
use crate::error::Result;
use crate::ops::CleaningOp;
use cocoon_llm::{ChatModel, ChatRequest};
use cocoon_table::Table;

/// State shared by all issue steps while a table is being cleaned.
pub struct PipelineState<'a> {
    /// The table, progressively rewritten by each applied op.
    pub table: Table,
    pub llm: &'a dyn ChatModel,
    pub config: &'a CleanerConfig,
    pub hook: &'a mut dyn DecisionHook,
    /// Applied operations, in order.
    pub ops: Vec<CleaningOp>,
    /// Narrative notes: rejected FDs, skipped steps, LLM failures.
    pub notes: Vec<String>,
}

impl<'a> PipelineState<'a> {
    pub fn new(
        table: Table,
        llm: &'a dyn ChatModel,
        config: &'a CleanerConfig,
        hook: &'a mut dyn DecisionHook,
    ) -> Self {
        PipelineState { table, llm, config, hook, ops: Vec::new(), notes: Vec::new() }
    }

    /// Sends a prompt and returns the completion text.
    pub fn ask(&self, prompt: String) -> Result<String> {
        Ok(self.llm.complete(&ChatRequest::simple(prompt))?.content)
    }

    /// Distinct-value census of a column (rendered text, ordered by
    /// descending frequency), truncated to `limit` values. When
    /// [`CleanerConfig::statistical_context`] is off, counts are erased to 1
    /// — the ablation of the paper's "statistics give the LLM context"
    /// claim.
    pub fn census(&self, column_index: usize, limit: usize) -> Vec<(String, usize)> {
        let column = match self.table.column(column_index) {
            Ok(c) => c,
            Err(_) => return Vec::new(),
        };
        let mut out: Vec<(String, usize)> = column
            .distinct_by_frequency()
            .into_iter()
            .take(limit)
            .map(|(v, c)| (v.render(), if self.config.statistical_context { c } else { 1 }))
            .collect();
        if !self.config.statistical_context {
            // Without statistics the model sees values in an arbitrary but
            // deterministic order rather than frequency-ranked.
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out
    }

    /// Records a note for the run report.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::AutoApprove;
    use cocoon_llm::SimLlm;

    fn table() -> Table {
        let rows: Vec<Vec<String>> = vec![vec!["a".into()], vec!["a".into()], vec!["b".into()]];
        Table::from_text_rows(&["x"], &rows).unwrap()
    }

    #[test]
    fn census_orders_by_frequency() {
        let llm = SimLlm::new();
        let config = CleanerConfig::default();
        let mut hook = AutoApprove;
        let state = PipelineState::new(table(), &llm, &config, &mut hook);
        let census = state.census(0, 10);
        assert_eq!(census, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        assert!(state.census(9, 10).is_empty());
    }

    #[test]
    fn census_without_statistics_erases_counts() {
        let llm = SimLlm::new();
        let config = CleanerConfig { statistical_context: false, ..CleanerConfig::default() };
        let mut hook = AutoApprove;
        let state = PipelineState::new(table(), &llm, &config, &mut hook);
        let census = state.census(0, 10);
        assert!(census.iter().all(|(_, c)| *c == 1));
    }
}
