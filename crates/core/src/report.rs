//! Human-readable run reports.
//!
//! Cocoon's output is meant to be "interpretable for long-term maintenance"
//! (Appendix A): an HTML report plus commented SQL. This module renders the
//! text equivalents: a workflow trace (Figure 1), a per-step report with
//! reasoning (Figures 4–5), and the final SQL script.

use crate::ops::IssueKind;
use crate::pipeline::{CleaningRun, STAGE_ORDER};

/// Renders the two-dimensional decomposition trace of Figure 1: which issue
/// types ran, over which columns, with what outcome.
pub fn workflow_trace(run: &CleaningRun) -> String {
    let mut out = String::new();
    out.push_str("Cocoon cleaning workflow (Figure 1 decomposition)\n");
    out.push_str("==================================================\n");
    out.push_str("input -> [statistical detection -> semantic detection -> semantic cleaning] per issue:\n\n");
    for stage in STAGE_ORDER {
        let ops = run.ops_for(stage);
        out.push_str(&format!("  §{} {}\n", stage.section(), stage.name()));
        if ops.is_empty() {
            out.push_str("      (no repairs applied)\n");
        }
        for op in ops {
            out.push_str(&format!(
                "      {} -> {} cell(s) changed\n",
                op.column.as_deref().unwrap_or("<table>"),
                op.cells_changed
            ));
        }
    }
    if !run.pending.is_empty() {
        out.push_str("\n  withheld for review (below confidence threshold):\n");
        for op in &run.pending {
            out.push_str(&format!(
                "      {} on {} at confidence {}\n",
                op.issue.name(),
                op.column.as_deref().unwrap_or("<table>"),
                op.confidence.describe()
            ));
        }
    }
    if !run.notes.is_empty() {
        out.push_str("\n  decisions & notes:\n");
        for note in &run.notes {
            out.push_str(&format!("      - {note}\n"));
        }
    }
    out
}

/// Renders the full per-step report: evidence, reasoning and SQL for every
/// applied op (the Figure 4/5 content as text).
pub fn full_report(run: &CleaningRun) -> String {
    let mut out = workflow_trace(run);
    out.push_str("\n\nPer-step details\n================\n");
    for (i, op) in run.ops.iter().enumerate() {
        out.push_str(&format!(
            "\n--- step {} · {} ({}) ---\n",
            i + 1,
            op.issue.name(),
            op.column.as_deref().unwrap_or("whole table")
        ));
        out.push_str(&format!("statistical detection : {}\n", op.statistical_evidence));
        out.push_str(&format!("semantic reasoning    : {}\n", op.llm_reasoning));
        out.push_str(&format!("cells changed         : {}\n", op.cells_changed));
        out.push_str(&format!("confidence            : {}\n", op.confidence.describe()));
        out.push_str("sql:\n");
        out.push_str(&op.rendered_sql());
        out.push('\n');
    }
    out
}

/// Summary row per issue kind: (name, ops, cells changed).
pub fn issue_summary(run: &CleaningRun) -> Vec<(IssueKind, usize, usize)> {
    STAGE_ORDER
        .iter()
        .map(|&stage| {
            let ops = run.ops_for(stage);
            let cells = ops.iter().map(|o| o.cells_changed).sum();
            (stage, ops.len(), cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Cleaner;
    use cocoon_llm::SimLlm;
    use cocoon_table::csv;

    fn run() -> CleaningRun {
        let mut text = String::from("lang\n");
        for _ in 0..10 {
            text.push_str("eng\n");
        }
        text.push_str("English\nN/A\n");
        let table = csv::read_str(&text).unwrap();
        Cleaner::new(SimLlm::new()).clean(&table).unwrap()
    }

    #[test]
    fn trace_lists_all_stages() {
        let trace = workflow_trace(&run());
        for section in ["2.1.1", "2.1.2", "2.1.3", "2.1.4", "2.1.5", "2.1.6", "2.1.7", "2.1.8"] {
            assert!(trace.contains(section), "missing {section} in\n{trace}");
        }
        assert!(trace.contains("String Outliers"));
        assert!(trace.contains("cell(s) changed"));
    }

    #[test]
    fn full_report_contains_sql_and_reasoning() {
        let report = full_report(&run());
        assert!(report.contains("Per-step details"));
        assert!(report.contains("semantic reasoning"));
        assert!(report.contains("SELECT"));
    }

    #[test]
    fn summary_accounts_all_ops() {
        let r = run();
        let summary = issue_summary(&r);
        let total_ops: usize = summary.iter().map(|(_, n, _)| n).sum();
        assert_eq!(total_ops, r.ops.len());
        let total_cells: usize = summary.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total_cells, r.total_changes());
    }
}
