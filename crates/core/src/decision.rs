//! Human-in-the-loop decision hooks.
//!
//! "Cocoon is designed to be a human-in-the-loop process for user feedback.
//! For each error detection and data cleaning step, we present the LLM
//! reasoning and ask humans to verify and adjust" (§2.2, Appendix A).
//! The pipeline consults a [`DecisionHook`] at both points; the benchmark
//! runs use [`AutoApprove`] exactly as the paper's experiments "skip these
//! and use the LLM provided ground truth" (§3.1).

use crate::ops::IssueKind;

/// What the human decided about a proposed step.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Apply the step as proposed.
    Approve,
    /// Skip the step entirely.
    Reject,
    /// Apply with an adjusted value mapping (old → new pairs).
    AdjustMapping(Vec<(String, String)>),
}

/// A proposed detection shown to the human.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReview<'a> {
    /// Issue type the detector flagged.
    pub issue: IssueKind,
    /// Column under review; `None` for table-level issues (duplication).
    pub column: Option<&'a str>,
    /// The profiler statistics that triggered the detection.
    pub statistical_evidence: &'a str,
    /// The model's verdict on whether the anomaly is a genuine error.
    pub llm_reasoning: &'a str,
}

/// A proposed cleaning shown to the human.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningReview<'a> {
    /// Issue type being repaired.
    pub issue: IssueKind,
    /// Column being repaired; `None` for table-level repairs.
    pub column: Option<&'a str>,
    /// The model's explanation of the proposed repair.
    pub llm_explanation: &'a str,
    /// old → new pairs ("" = NULL).
    pub mapping: &'a [(String, String)],
    /// The generated SQL, as it would execute.
    pub sql_preview: &'a str,
}

/// The human-in-the-loop boundary.
pub trait DecisionHook {
    /// Review a semantic detection verdict before cleaning is attempted.
    fn review_detection(&mut self, review: &DetectionReview<'_>) -> Decision;
    /// Review a proposed cleaning before it is applied.
    fn review_cleaning(&mut self, review: &CleaningReview<'_>) -> Decision;
}

/// Approves everything — the paper's benchmark mode.
#[derive(Debug, Default, Clone)]
pub struct AutoApprove;

impl DecisionHook for AutoApprove {
    fn review_detection(&mut self, _review: &DetectionReview<'_>) -> Decision {
        Decision::Approve
    }

    fn review_cleaning(&mut self, _review: &CleaningReview<'_>) -> Decision {
        Decision::Approve
    }
}

/// Rejects specific issue kinds (e.g. a user who never wants row dedup).
#[derive(Debug, Clone, Default)]
pub struct RejectIssues {
    /// Issue kinds to reject at both review points.
    pub rejected: Vec<IssueKind>,
}

impl DecisionHook for RejectIssues {
    fn review_detection(&mut self, review: &DetectionReview<'_>) -> Decision {
        if self.rejected.contains(&review.issue) {
            Decision::Reject
        } else {
            Decision::Approve
        }
    }

    fn review_cleaning(&mut self, review: &CleaningReview<'_>) -> Decision {
        if self.rejected.contains(&review.issue) {
            Decision::Reject
        } else {
            Decision::Approve
        }
    }
}

/// Records every review it sees (testing aid) while approving.
#[derive(Debug, Default)]
pub struct RecordingHook {
    /// Every detection review seen: issue kind and column.
    pub detections: Vec<(IssueKind, Option<String>)>,
    /// Every cleaning review seen: issue kind and mapping size.
    pub cleanings: Vec<(IssueKind, usize)>,
}

impl DecisionHook for RecordingHook {
    fn review_detection(&mut self, review: &DetectionReview<'_>) -> Decision {
        self.detections.push((review.issue, review.column.map(str::to_string)));
        Decision::Approve
    }

    fn review_cleaning(&mut self, review: &CleaningReview<'_>) -> Decision {
        self.cleanings.push((review.issue, review.mapping.len()));
        Decision::Approve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_approve_approves() {
        let mut hook = AutoApprove;
        let review = DetectionReview {
            issue: IssueKind::StringOutliers,
            column: Some("x"),
            statistical_evidence: "",
            llm_reasoning: "",
        };
        assert_eq!(hook.review_detection(&review), Decision::Approve);
    }

    #[test]
    fn reject_issues_filters() {
        let mut hook = RejectIssues { rejected: vec![IssueKind::Duplication] };
        let review = DetectionReview {
            issue: IssueKind::Duplication,
            column: None,
            statistical_evidence: "",
            llm_reasoning: "",
        };
        assert_eq!(hook.review_detection(&review), Decision::Reject);
        let review = DetectionReview { issue: IssueKind::ColumnType, ..review };
        assert_eq!(hook.review_detection(&review), Decision::Approve);
    }

    #[test]
    fn recording_hook_records() {
        let mut hook = RecordingHook::default();
        let mapping = vec![("a".to_string(), "b".to_string())];
        let review = CleaningReview {
            issue: IssueKind::StringOutliers,
            column: Some("c"),
            llm_explanation: "e",
            mapping: &mapping,
            sql_preview: "SELECT",
        };
        hook.review_cleaning(&review);
        assert_eq!(hook.cleanings, vec![(IssueKind::StringOutliers, 1)]);
    }
}
