//! Run-progress snapshots for polling a clean that executes elsewhere.
//!
//! The paper's hosted deployment is interactive: a user submits a table and
//! watches the pipeline work through its stages. [`RunProgress`] is the
//! observation channel that makes that possible without coupling the
//! pipeline to any transport — the cleaning thread updates it between
//! stages, and any number of observers (a job-poll endpoint, a TUI) read
//! consistent [`ProgressSnapshot`]s concurrently.
//!
//! All methods take `&self`; the struct is `Send + Sync` and designed to
//! live in an `Arc` shared between the worker running
//! [`Cleaner::clean_with_progress`](crate::Cleaner::clean_with_progress)
//! and its observers.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Wall-clock timings of one finished pipeline stage, as delivered to a
/// [`StageObserver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name ([`IssueKind::name`](crate::IssueKind::name)).
    pub stage: &'static str,
    /// Total wall time of the stage (detect fan-out + decide/apply).
    pub total: Duration,
    /// Wall time of the concurrent detect fan-out within the stage; the
    /// sequential decide/apply phase is `total - detect`.
    pub detect: Duration,
    /// Cumulative operations applied once the stage finished.
    pub ops_applied: usize,
}

/// Observer of per-stage wall-clock cost, fired at each stage boundary by
/// the cleaning thread. Attach one with [`RunProgress::set_observer`] and
/// pass the progress to [`Cleaner::clean_observed`](crate::Cleaner::clean_observed)
/// (or any `clean_*` taking a progress) — library users then see exactly
/// the timings `cocoon-server` exports in its `latency` metrics.
///
/// Implementations must be `Send + Sync`: the callback runs on whichever
/// thread executes the clean.
pub trait StageObserver: Send + Sync {
    /// Called once per enabled stage, after its decide phase completes.
    fn stage_finished(&self, timing: StageTiming);
}

/// Shared, thread-safe progress state of one cleaning run.
#[derive(Default)]
pub struct RunProgress {
    total_stages: AtomicUsize,
    completed_stages: AtomicUsize,
    ops_applied: AtomicUsize,
    finished: AtomicBool,
    current_stage: Mutex<Option<&'static str>>,
    stage_started: Mutex<Option<Instant>>,
    detect_ns: AtomicU64,
    observer: Mutex<Option<Arc<dyn StageObserver>>>,
}

impl std::fmt::Debug for RunProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunProgress")
            .field("snapshot", &self.snapshot())
            .field("has_observer", &self.observer.lock().expect("progress lock").is_some())
            .finish()
    }
}

/// One consistent observation of a [`RunProgress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Stages this run will execute (enabled issues only).
    pub total_stages: usize,
    /// Stages fully finished so far.
    pub completed_stages: usize,
    /// Operations applied so far (updated at stage boundaries).
    pub ops_applied: usize,
    /// Name of the stage currently executing, if any.
    pub current_stage: Option<&'static str>,
    /// True once the run has produced its `CleaningRun`.
    pub finished: bool,
}

impl RunProgress {
    /// A progress tracker with nothing started yet.
    pub fn new() -> Self {
        RunProgress::default()
    }

    /// Attaches a stage-timing observer; replaces any previous one. The
    /// observer is fired from the cleaning thread at each stage boundary.
    pub fn set_observer(&self, observer: Arc<dyn StageObserver>) {
        *self.observer.lock().expect("progress lock") = Some(observer);
    }

    /// Called once when the run starts, with the number of enabled stages.
    pub(crate) fn begin(&self, total_stages: usize) {
        self.total_stages.store(total_stages, Ordering::Relaxed);
        self.completed_stages.store(0, Ordering::Relaxed);
        self.ops_applied.store(0, Ordering::Relaxed);
        self.finished.store(false, Ordering::Relaxed);
        *self.current_stage.lock().expect("progress lock") = None;
        *self.stage_started.lock().expect("progress lock") = None;
        self.detect_ns.store(0, Ordering::Relaxed);
    }

    pub(crate) fn start_stage(&self, name: &'static str) {
        *self.current_stage.lock().expect("progress lock") = Some(name);
        *self.stage_started.lock().expect("progress lock") = Some(Instant::now());
        self.detect_ns.store(0, Ordering::Relaxed);
    }

    /// Detect fan-outs report their wall time here; accumulated per stage
    /// and reset by [`RunProgress::start_stage`].
    pub(crate) fn add_detect_time(&self, elapsed: Duration) {
        self.detect_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn finish_stage(&self, ops_applied: usize) {
        self.ops_applied.store(ops_applied, Ordering::Relaxed);
        self.completed_stages.fetch_add(1, Ordering::Relaxed);
        let stage = self.current_stage.lock().expect("progress lock").take();
        let started = self.stage_started.lock().expect("progress lock").take();
        let observer = self.observer.lock().expect("progress lock").clone();
        if let (Some(stage), Some(started), Some(observer)) = (stage, started, observer) {
            let total = started.elapsed();
            let detect = Duration::from_nanos(self.detect_ns.load(Ordering::Relaxed)).min(total);
            observer.stage_finished(StageTiming { stage, total, detect, ops_applied });
        }
    }

    pub(crate) fn finish(&self, ops_applied: usize) {
        self.ops_applied.store(ops_applied, Ordering::Relaxed);
        *self.current_stage.lock().expect("progress lock") = None;
        self.finished.store(true, Ordering::Relaxed);
    }

    /// A consistent-enough view for polling: counters are read relaxed, so
    /// a snapshot racing a stage boundary may be one update stale — never
    /// torn.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            total_stages: self.total_stages.load(Ordering::Relaxed),
            completed_stages: self.completed_stages.load(Ordering::Relaxed),
            ops_applied: self.ops_applied.load(Ordering::Relaxed),
            current_stage: *self.current_stage.lock().expect("progress lock"),
            finished: self.finished.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_updates_snapshot() {
        let p = RunProgress::new();
        assert_eq!(p.snapshot().total_stages, 0);
        p.begin(3);
        let s = p.snapshot();
        assert_eq!((s.total_stages, s.completed_stages, s.finished), (3, 0, false));
        p.start_stage("String Outliers");
        assert_eq!(p.snapshot().current_stage, Some("String Outliers"));
        p.finish_stage(2);
        let s = p.snapshot();
        assert_eq!((s.completed_stages, s.ops_applied, s.current_stage), (1, 2, None));
        p.finish(5);
        let s = p.snapshot();
        assert!(s.finished);
        assert_eq!(s.ops_applied, 5);
    }

    #[test]
    fn begin_resets_a_reused_progress() {
        let p = RunProgress::new();
        p.begin(2);
        p.start_stage("x");
        p.finish_stage(1);
        p.finish(1);
        p.begin(4);
        let s = p.snapshot();
        assert_eq!((s.total_stages, s.completed_stages, s.ops_applied), (4, 0, 0));
        assert!(!s.finished);
    }

    #[test]
    fn observer_sees_each_stage_with_consistent_timings() {
        struct Collect(Mutex<Vec<StageTiming>>);
        impl StageObserver for Collect {
            fn stage_finished(&self, timing: StageTiming) {
                self.0.lock().unwrap().push(timing);
            }
        }
        let collect = Arc::new(Collect(Mutex::new(Vec::new())));
        let p = RunProgress::new();
        p.set_observer(collect.clone());
        p.begin(2);
        p.start_stage("alpha");
        p.add_detect_time(Duration::from_micros(5));
        std::thread::sleep(Duration::from_millis(1));
        p.finish_stage(1);
        p.start_stage("beta");
        p.finish_stage(3);
        p.finish(3);
        let events = collect.0.lock().unwrap().clone();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, "alpha");
        assert!(events[0].total >= Duration::from_millis(1));
        assert_eq!(events[0].detect, Duration::from_micros(5));
        assert!(events[0].detect <= events[0].total);
        assert_eq!(events[0].ops_applied, 1);
        assert_eq!(events[1].stage, "beta");
        // Detect accumulator resets between stages.
        assert_eq!(events[1].detect, Duration::ZERO);
        assert_eq!(events[1].ops_applied, 3);
    }

    #[test]
    fn stage_timing_without_observer_is_a_no_op() {
        let p = RunProgress::new();
        p.begin(1);
        p.start_stage("solo");
        p.finish_stage(0);
        assert_eq!(p.snapshot().completed_stages, 1);
    }

    #[test]
    fn concurrent_observation_is_safe() {
        let p = std::sync::Arc::new(RunProgress::new());
        p.begin(8);
        std::thread::scope(|s| {
            let worker = p.clone();
            s.spawn(move || {
                for _ in 0..8 {
                    worker.start_stage("stage");
                    worker.finish_stage(0);
                }
                worker.finish(0);
            });
            let observer = p.clone();
            s.spawn(move || loop {
                let snap = observer.snapshot();
                assert!(snap.completed_stages <= snap.total_stages);
                if snap.finished {
                    break;
                }
            });
        });
        assert_eq!(p.snapshot().completed_stages, 8);
    }
}
