//! Run-progress snapshots for polling a clean that executes elsewhere.
//!
//! The paper's hosted deployment is interactive: a user submits a table and
//! watches the pipeline work through its stages. [`RunProgress`] is the
//! observation channel that makes that possible without coupling the
//! pipeline to any transport — the cleaning thread updates it between
//! stages, and any number of observers (a job-poll endpoint, a TUI) read
//! consistent [`ProgressSnapshot`]s concurrently.
//!
//! All methods take `&self`; the struct is `Send + Sync` and designed to
//! live in an `Arc` shared between the worker running
//! [`Cleaner::clean_with_progress`](crate::Cleaner::clean_with_progress)
//! and its observers.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shared, thread-safe progress state of one cleaning run.
#[derive(Debug, Default)]
pub struct RunProgress {
    total_stages: AtomicUsize,
    completed_stages: AtomicUsize,
    ops_applied: AtomicUsize,
    finished: AtomicBool,
    current_stage: Mutex<Option<&'static str>>,
}

/// One consistent observation of a [`RunProgress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Stages this run will execute (enabled issues only).
    pub total_stages: usize,
    /// Stages fully finished so far.
    pub completed_stages: usize,
    /// Operations applied so far (updated at stage boundaries).
    pub ops_applied: usize,
    /// Name of the stage currently executing, if any.
    pub current_stage: Option<&'static str>,
    /// True once the run has produced its `CleaningRun`.
    pub finished: bool,
}

impl RunProgress {
    /// A progress tracker with nothing started yet.
    pub fn new() -> Self {
        RunProgress::default()
    }

    /// Called once when the run starts, with the number of enabled stages.
    pub(crate) fn begin(&self, total_stages: usize) {
        self.total_stages.store(total_stages, Ordering::Relaxed);
        self.completed_stages.store(0, Ordering::Relaxed);
        self.ops_applied.store(0, Ordering::Relaxed);
        self.finished.store(false, Ordering::Relaxed);
        *self.current_stage.lock().expect("progress lock") = None;
    }

    pub(crate) fn start_stage(&self, name: &'static str) {
        *self.current_stage.lock().expect("progress lock") = Some(name);
    }

    pub(crate) fn finish_stage(&self, ops_applied: usize) {
        self.ops_applied.store(ops_applied, Ordering::Relaxed);
        self.completed_stages.fetch_add(1, Ordering::Relaxed);
        *self.current_stage.lock().expect("progress lock") = None;
    }

    pub(crate) fn finish(&self, ops_applied: usize) {
        self.ops_applied.store(ops_applied, Ordering::Relaxed);
        *self.current_stage.lock().expect("progress lock") = None;
        self.finished.store(true, Ordering::Relaxed);
    }

    /// A consistent-enough view for polling: counters are read relaxed, so
    /// a snapshot racing a stage boundary may be one update stale — never
    /// torn.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            total_stages: self.total_stages.load(Ordering::Relaxed),
            completed_stages: self.completed_stages.load(Ordering::Relaxed),
            ops_applied: self.ops_applied.load(Ordering::Relaxed),
            current_stage: *self.current_stage.lock().expect("progress lock"),
            finished: self.finished.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_updates_snapshot() {
        let p = RunProgress::new();
        assert_eq!(p.snapshot().total_stages, 0);
        p.begin(3);
        let s = p.snapshot();
        assert_eq!((s.total_stages, s.completed_stages, s.finished), (3, 0, false));
        p.start_stage("String Outliers");
        assert_eq!(p.snapshot().current_stage, Some("String Outliers"));
        p.finish_stage(2);
        let s = p.snapshot();
        assert_eq!((s.completed_stages, s.ops_applied, s.current_stage), (1, 2, None));
        p.finish(5);
        let s = p.snapshot();
        assert!(s.finished);
        assert_eq!(s.ops_applied, 5);
    }

    #[test]
    fn begin_resets_a_reused_progress() {
        let p = RunProgress::new();
        p.begin(2);
        p.start_stage("x");
        p.finish_stage(1);
        p.finish(1);
        p.begin(4);
        let s = p.snapshot();
        assert_eq!((s.total_stages, s.completed_stages, s.ops_applied), (4, 0, 0));
        assert!(!s.finished);
    }

    #[test]
    fn concurrent_observation_is_safe() {
        let p = std::sync::Arc::new(RunProgress::new());
        p.begin(8);
        std::thread::scope(|s| {
            let worker = p.clone();
            s.spawn(move || {
                for _ in 0..8 {
                    worker.start_stage("stage");
                    worker.finish_stage(0);
                }
                worker.finish(0);
            });
            let observer = p.clone();
            s.spawn(move || loop {
                let snap = observer.snapshot();
                assert!(snap.completed_stages <= snap.total_stages);
                if snap.finished {
                    break;
                }
            });
        });
        assert_eq!(p.snapshot().completed_stages, 8);
    }
}
