//! Property tests: render → parse round-trips over generated expression
//! trees, and executor invariants.

use cocoon_sql::{execute, parse_expr, render_expr, BinaryOp, Expr, Select, UnaryOp};
use cocoon_table::{Table, Value};
use proptest::prelude::*;

/// Literal values whose SQL renderings are parseable (text/int/bool/null).
fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::null()),
        any::<bool>().prop_map(Expr::lit),
        (-1000i64..1000).prop_map(Expr::lit),
        "[ -~]{0,8}".prop_map(|s| Expr::lit(s.as_str())),
    ]
}

fn column_ref() -> impl Strategy<Value = Expr> {
    prop_oneof![Just(Expr::col("a")), Just(Expr::col("b"))]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column_ref()];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::eq(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::or(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Add, l, r)),
            inner.clone().prop_map(Expr::is_null),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, o)| Expr::Case {
                operand: None,
                arms: vec![(c, t)],
                otherwise: Some(Box::new(o)),
            }),
            (inner.clone(), proptest::collection::vec(inner, 1..3))
                .prop_map(|(e, list)| Expr::InList { expr: Box::new(e), list, negated: false }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn render_parse_round_trip(e in expr()) {
        let sql = render_expr(&e);
        let reparsed = parse_expr(&sql).expect("rendered SQL parses");
        prop_assert_eq!(reparsed, e, "sql was: {}", sql);
    }

    #[test]
    fn select_star_identity(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9]{0,6}", 2),
            0..10,
        )
    ) {
        let rows: Vec<Vec<String>> = rows;
        let table = Table::from_text_rows(&["a", "b"], &rows).expect("table");
        let out = execute(&Select::star("t"), &table).expect("executes");
        prop_assert_eq!(out, table);
    }

    #[test]
    fn value_map_execution_is_exhaustive(
        values in proptest::collection::vec("[a-d]{1}", 1..20),
    ) {
        // CASE a WHEN 'a' THEN 'z' ELSE a END leaves non-'a' untouched.
        let rows: Vec<Vec<String>> = values.iter().map(|v| vec![v.clone()]).collect();
        let table = Table::from_text_rows(&["a"], &rows).expect("table");
        let map = Expr::value_map("a", &[(Value::from("a"), Value::from("z"))]);
        let select = Select {
            distinct: false,
            projections: vec![cocoon_sql::Projection::aliased(map, "a")],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&select, &table).expect("executes");
        for (r, v) in values.iter().enumerate() {
            let expected = if v == "a" { "z" } else { v.as_str() };
            prop_assert_eq!(out.render_cell(r, 0).expect("cell"), expected);
        }
    }
}
