//! Differential property tests: the columnar executor must be
//! indistinguishable from the retained row-wise oracle on every generated
//! `SELECT` (projections, `WHERE`, `QUALIFY`, `DISTINCT`), and pass-through
//! projections must share column storage rather than deep-copying cells.

use cocoon_sql::{
    execute, execute_rowwise, BinaryOp, Expr, Projection, RowNumberFilter, Select, SortOrder,
    UnaryOp,
};
use cocoon_table::{Column, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Cell values mixing NULLs, text, ints and floats (cross-type numeric
/// equality and NULL routing are the interesting value-map edge cases).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        "[a-c]{0,2}".prop_map(Value::from),
        (-5i64..5).prop_map(Value::Int),
        (-5i64..5).prop_map(|i| Value::Float(i as f64 / 2.0)),
        // -0.0 == 0.0 == Int(0) under Value::eq; exercises the Hash/Eq
        // agreement the value-map fast path's lookup table relies on.
        Just(Value::Float(-0.0)),
    ]
}

/// A two-column table `a`, `b` of 0..12 rows with mixed cell values.
fn table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((value(), value()), 0..12).prop_map(|cells| {
        let (a, b): (Vec<Value>, Vec<Value>) = cells.into_iter().unzip();
        Table::new(
            Schema::all_text(&["a", "b"]).expect("schema"),
            vec![Column::new(a), Column::new(b)],
        )
        .expect("table")
    })
}

fn column_ref() -> impl Strategy<Value = Expr> {
    prop_oneof![Just(Expr::col("a")), Just(Expr::col("b"))]
}

/// Scalar expressions covering every evaluator fast path (literal, column,
/// cast, literal value map) plus shapes that force the scalar fallback
/// (logic, arithmetic, searched CASE, IN lists).
fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![value().prop_map(Expr::Literal), column_ref()];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::eq(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::or(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Add, l, r)),
            inner.clone().prop_map(Expr::is_null),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            // Simple CASE with literal arms: the value-map fast path…
            (column_ref(), proptest::collection::vec((value(), value()), 1..4), value()).prop_map(
                |(col, arms, otherwise)| Expr::Case {
                    operand: Some(Box::new(col)),
                    arms: arms
                        .into_iter()
                        .map(|(w, t)| (Expr::Literal(w), Expr::Literal(t)))
                        .collect(),
                    otherwise: Some(Box::new(Expr::Literal(otherwise))),
                }
            ),
            // …and the canonical cleaning shape, ELSE'ing the operand back.
            (column_ref(), proptest::collection::vec((value(), value()), 1..4)).prop_map(
                |(col, arms)| Expr::Case {
                    operand: Some(Box::new(col.clone())),
                    arms: arms
                        .into_iter()
                        .map(|(w, t)| (Expr::Literal(w), Expr::Literal(t)))
                        .collect(),
                    otherwise: Some(Box::new(col)),
                }
            ),
            // Searched CASE: always takes the row-wise fallback.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, o)| Expr::Case {
                operand: None,
                arms: vec![(c, t)],
                otherwise: Some(Box::new(o)),
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(e, list)| Expr::InList { expr: Box::new(e), list, negated: false }),
            inner.clone().prop_map(|e| Expr::try_cast(e, cocoon_table::DataType::Int)),
            inner.clone().prop_map(|e| Expr::cast(e, cocoon_table::DataType::Text)),
            // Strict fallible cast: both executors must error on the same
            // inputs (non-numeric text → CAST error).
            inner.prop_map(|e| Expr::cast(e, cocoon_table::DataType::Int)),
        ]
    })
}

fn projection() -> impl Strategy<Value = Projection> {
    prop_oneof![
        Just(Projection::Star),
        column_ref().prop_map(|e| Projection::Expr { expr: e, alias: None }),
        (expr(), "[a-z]{1,3}").prop_map(|(e, alias)| Projection::aliased(e, alias)),
    ]
}

fn qualify() -> impl Strategy<Value = Option<RowNumberFilter>> {
    prop_oneof![
        Just(None),
        (column_ref(), column_ref(), any::<bool>(), 1usize..3).prop_map(
            |(part, order, desc, keep)| {
                Some(RowNumberFilter {
                    partition_by: vec![part],
                    order_by: vec![(order, if desc { SortOrder::Desc } else { SortOrder::Asc })],
                    keep,
                })
            }
        ),
    ]
}

fn select() -> impl Strategy<Value = Select> {
    (
        proptest::collection::vec(projection(), 1..4),
        prop_oneof![Just(None), expr().prop_map(Some)],
        qualify(),
        any::<bool>(),
    )
        .prop_map(|(projections, where_clause, qualify, distinct)| Select {
            distinct,
            projections,
            from: "t".into(),
            where_clause,
            qualify,
            comment: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: columnar and row-wise execution agree on
    /// every generated query — same table on success, and when one errors
    /// (bad cast, untyped comparison, …) so does the other.
    #[test]
    fn columnar_matches_rowwise_oracle(t in table(), s in select()) {
        let columnar = execute(&s, &t);
        let rowwise = execute_rowwise(&s, &t);
        match (columnar, rowwise) {
            (Ok(c), Ok(r)) => prop_assert_eq!(c, r),
            (Err(_), Err(_)) => {}
            (c, r) => prop_assert!(
                false,
                "executors disagree: columnar={:?} rowwise={:?}",
                c.map(|t| t.to_string()),
                r.map(|t| t.to_string())
            ),
        }
    }

    /// Pass-through projections must share storage, not deep-copy: every
    /// `SELECT *` (and bare-column projection) output column is the same
    /// allocation as its input column.
    #[test]
    fn pass_through_projections_share_columns(t in table()) {
        let star = execute(&Select::star("t"), &t).expect("star executes");
        for c in 0..t.width() {
            prop_assert!(
                Arc::ptr_eq(t.shared_column(c).expect("col"), star.shared_column(c).expect("col")),
                "star projection deep-copied column {}", c
            );
        }
        let bare = Select {
            distinct: false,
            projections: vec![
                Projection::Expr { expr: Expr::col("b"), alias: None },
                Projection::aliased(Expr::col("a"), "renamed"),
            ],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&bare, &t).expect("bare executes");
        prop_assert!(Arc::ptr_eq(t.shared_column(1).expect("col"), out.shared_column(0).expect("col")));
        prop_assert!(Arc::ptr_eq(t.shared_column(0).expect("col"), out.shared_column(1).expect("col")));
    }
}
