//! Parser for the SQL subset the renderer emits.
//!
//! The cleaning pipeline's output is SQL text (Figure 5 of the paper). To
//! make that artifact *executable* in this repository — and to test the
//! renderer by round-trip — this parser reads the exact dialect
//! [`render`](crate::render) produces: single-table `SELECT`s with
//! `DISTINCT`, `WHERE`, `QUALIFY ROW_NUMBER() OVER (…) <= k`, CASE/CAST/
//! function/IN expressions and typed literals.

use crate::ast::{BinaryOp, Expr, Projection, RowNumberFilter, Select, SortOrder, UnaryOp};
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Spanned, Symbol, Token};
use cocoon_table::{DataType, Date, TimeOfDay, Value};

/// Parses a single `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<Select> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.select()?;
    p.expect_end()?;
    Ok(select)
}

/// Parses a standalone scalar expression.
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    p.expect_end()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> SqlError {
        let position = self.tokens.get(self.pos).map(|t| t.position).unwrap_or(0);
        SqlError::Parse { position, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(self.error(format!("expected {word}")))
        }
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected {sym:?}")))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing tokens"))
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Word(w)) => Ok(w.to_lowercase()),
            Some(Token::QuotedIdent(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_word("SELECT")?;
        let distinct = self.eat_word("DISTINCT");
        let mut projections = Vec::new();
        loop {
            projections.push(self.projection()?);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_word("FROM")?;
        let from = self.identifier()?;
        let where_clause = if self.eat_word("WHERE") { Some(self.expr()?) } else { None };
        let qualify = if self.eat_word("QUALIFY") { Some(self.qualify()?) } else { None };
        Ok(Select { distinct, projections, from, where_clause, qualify, comment: None })
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(Projection::Star);
        }
        let expr = self.expr()?;
        let alias = if self.eat_word("AS") { Some(self.identifier()?) } else { None };
        Ok(Projection::Expr { expr, alias })
    }

    fn qualify(&mut self) -> Result<RowNumberFilter> {
        self.expect_word("ROW_NUMBER")?;
        self.expect_symbol(Symbol::LParen)?;
        self.expect_symbol(Symbol::RParen)?;
        self.expect_word("OVER")?;
        self.expect_symbol(Symbol::LParen)?;
        let mut partition_by = Vec::new();
        let mut order_by = Vec::new();
        if self.eat_word("PARTITION") {
            self.expect_word("BY")?;
            loop {
                partition_by.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat_word("DESC") {
                    SortOrder::Desc
                } else {
                    self.eat_word("ASC");
                    SortOrder::Asc
                };
                order_by.push((expr, dir));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        self.expect_symbol(Symbol::Le)?;
        let keep = match self.bump() {
            Some(Token::Number(n)) => {
                n.parse::<usize>().map_err(|_| self.error("QUALIFY bound must be an integer"))?
            }
            _ => return Err(self.error("expected integer after <=")),
        };
        Ok(RowNumberFilter { partition_by, order_by, keep })
    }

    // Expression grammar, lowest precedence first.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_word("OR") {
            let right = self.and_expr()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_word("AND") {
            let right = self.not_expr()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_word("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let mut left = self.additive()?;
        // Postfix operators chain left-associatively:
        // `x IS NULL IN (TRUE)` is `(x IS NULL) IN (TRUE)`.
        loop {
            // IS [NOT] NULL
            if self.eat_word("IS") {
                let negated = self.eat_word("NOT");
                self.expect_word("NULL")?;
                left = Expr::Unary {
                    op: if negated { UnaryOp::IsNotNull } else { UnaryOp::IsNull },
                    expr: Box::new(left),
                };
                continue;
            }
            // [NOT] IN (…)
            let in_clause = if self.eat_word("NOT") {
                self.expect_word("IN")?;
                Some(true)
            } else if self.eat_word("IN") {
                Some(false)
            } else {
                None
            };
            if let Some(negated) = in_clause {
                self.expect_symbol(Symbol::LParen)?;
                let mut list = Vec::new();
                loop {
                    list.push(self.expr()?);
                    if !self.eat_symbol(Symbol::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
                left = Expr::InList { expr: Box::new(left), list, negated };
                continue;
            }
            break;
        }
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Symbol::Ne)) => Some(BinaryOp::Ne),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Symbol::Le)) => Some(BinaryOp::Le),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Symbol::Ge)) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.eat_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.eat_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            // Fold negation into numeric literals for cleaner ASTs.
            if let Expr::Literal(Value::Int(i)) = inner {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = inner {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Symbol(Symbol::LParen)) => {
                self.bump();
                let inner = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(inner)
            }
            Some(Token::String(s)) => {
                self.bump();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Number(n)) => {
                self.bump();
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(|f| Expr::Literal(Value::Float(f)))
                        .map_err(|_| self.error("bad float literal"))
                } else {
                    n.parse::<i64>()
                        .map(|i| Expr::Literal(Value::Int(i)))
                        .map_err(|_| self.error("bad integer literal"))
                }
            }
            Some(Token::QuotedIdent(name)) => {
                self.bump();
                Ok(Expr::Column(name))
            }
            Some(Token::Word(word)) => self.word_expr(&word),
            _ => Err(self.error("expected expression")),
        }
    }

    fn word_expr(&mut self, word: &str) -> Result<Expr> {
        match word {
            "NULL" => {
                self.bump();
                Ok(Expr::null())
            }
            // NOT can appear in operand position ("a = NOT (b)"): the
            // renderer always parenthesises its operand, so parse tightly.
            "NOT" => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
            }
            "TRUE" => {
                self.bump();
                Ok(Expr::lit(true))
            }
            "FALSE" => {
                self.bump();
                Ok(Expr::lit(false))
            }
            "DATE" => {
                self.bump();
                match self.bump() {
                    Some(Token::String(s)) => Date::parse_iso(&s)
                        .map(|d| Expr::Literal(Value::Date(d)))
                        .ok_or_else(|| self.error("invalid DATE literal")),
                    _ => Err(self.error("expected string after DATE")),
                }
            }
            "TIME" => {
                self.bump();
                match self.bump() {
                    Some(Token::String(s)) => TimeOfDay::parse_flexible(&s)
                        .map(|t| Expr::Literal(Value::Time(t)))
                        .ok_or_else(|| self.error("invalid TIME literal")),
                    _ => Err(self.error("expected string after TIME")),
                }
            }
            "CASE" => self.case_expr(),
            "CAST" | "TRY_CAST" => {
                let lenient = word == "TRY_CAST";
                self.bump();
                self.expect_symbol(Symbol::LParen)?;
                let inner = self.expr()?;
                self.expect_word("AS")?;
                let ty = match self.bump() {
                    Some(Token::Word(name)) => DataType::from_sql_name(&name)
                        .ok_or_else(|| self.error(format!("unknown type {name}")))?,
                    _ => return Err(self.error("expected type name")),
                };
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Cast { expr: Box::new(inner), ty, lenient })
            }
            _ => {
                // Function call or bare column.
                self.bump();
                if self.eat_symbol(Symbol::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_symbol(Symbol::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(Symbol::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Symbol::RParen)?;
                    }
                    Ok(Expr::Func { name: word.to_string(), args })
                } else {
                    // Unquoted identifiers are folded to lowercase (our
                    // emitted SQL only leaves plain lowercase names bare).
                    Ok(Expr::Column(word.to_lowercase()))
                }
            }
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_word("CASE")?;
        let operand = if matches!(self.peek(), Some(Token::Word(w)) if w == "WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut arms = Vec::new();
        while self.eat_word("WHEN") {
            let when = self.expr()?;
            self.expect_word("THEN")?;
            let then = self.expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return Err(self.error("CASE requires at least one WHEN arm"));
        }
        let otherwise = if self.eat_word("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_word("END")?;
        Ok(Expr::Case { operand, arms, otherwise })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_expr, render_select};

    #[test]
    fn parses_value_map_case() {
        let e = parse_expr(
            "CASE lang WHEN 'English' THEN 'eng' WHEN 'French' THEN 'fre' ELSE lang END",
        )
        .unwrap();
        match &e {
            Expr::Case { operand: Some(_), arms, otherwise: Some(_) } => {
                assert_eq!(arms.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_searched_case() {
        let e = parse_expr("CASE WHEN x > 100 THEN NULL ELSE x END").unwrap();
        match &e {
            Expr::Case { operand: None, arms, .. } => assert_eq!(arms.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_cast_and_literals() {
        let e = parse_expr("CAST('yes' AS BOOLEAN)").unwrap();
        assert_eq!(e, Expr::cast(Expr::lit("yes"), DataType::Bool));
        let e = parse_expr("TRY_CAST(x AS BIGINT)").unwrap();
        assert!(matches!(e, Expr::Cast { lenient: true, .. }));
        assert_eq!(parse_expr("-3").unwrap(), Expr::lit(-3i64));
        assert_eq!(parse_expr("2.5").unwrap(), Expr::lit(2.5));
        assert_eq!(parse_expr("NULL").unwrap(), Expr::null());
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::lit(true));
    }

    #[test]
    fn parses_typed_literals() {
        let e = parse_expr("DATE '2020-01-02'").unwrap();
        assert!(matches!(e, Expr::Literal(Value::Date(_))));
        let e = parse_expr("TIME '22:30'").unwrap();
        assert!(matches!(e, Expr::Literal(Value::Time(_))));
        assert!(parse_expr("DATE '13/45/1'").is_err());
    }

    #[test]
    fn precedence() {
        let e = parse_expr("a OR b AND c").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::Add, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_and_in_list() {
        let e = parse_expr("v IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::Unary { op: UnaryOp::IsNotNull, .. }));
        let e = parse_expr("v IN ('N/A', 'null')").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = parse_expr("v NOT IN ('x')").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn functions_parse() {
        let e = parse_expr("REGEXP_REPLACE(col, '\\d+', 'N')").unwrap();
        match &e {
            Expr::Func { name, args } => {
                assert_eq!(name, "REGEXP_REPLACE");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_round_trip() {
        let select = Select {
            distinct: true,
            projections: vec![
                Projection::Star,
                Projection::aliased(
                    Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]),
                    "lang_clean",
                ),
            ],
            from: "rayyan".into(),
            where_clause: Some(Expr::Unary {
                op: UnaryOp::IsNotNull,
                expr: Box::new(Expr::col("lang")),
            }),
            qualify: Some(RowNumberFilter {
                partition_by: vec![Expr::col("id")],
                order_by: vec![(Expr::col("updated"), SortOrder::Desc)],
                keep: 1,
            }),
            comment: Some("round trip".into()),
        };
        let sql = render_select(&select);
        let parsed = parse_select(&sql).unwrap();
        // Comments are not round-tripped; compare the rest.
        let mut expected = select.clone();
        expected.comment = None;
        assert_eq!(parsed, expected);
    }

    #[test]
    fn expr_round_trips() {
        for sql in [
            "CASE lang WHEN 'English' THEN 'eng' ELSE lang END",
            "TRY_CAST(x AS DOUBLE)",
            "a + b * c - d",
            "x IS NULL OR y IS NOT NULL",
            "v IN ('a', 'b', 'c')",
            "NOT (a = b)",
            "TRIM(UPPER(name))",
        ] {
            let e = parse_expr(sql).unwrap();
            let rendered = render_expr(&e);
            let reparsed = parse_expr(&rendered).unwrap();
            assert_eq!(e, reparsed, "{sql} → {rendered}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_expr("CASE END").is_err());
        assert!(parse_expr("CAST(x AS NOPE)").is_err());
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT * FROM t garbage").is_err());
        assert!(parse_expr("(a").is_err());
    }
}
