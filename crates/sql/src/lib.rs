//! # cocoon-sql
//!
//! SQL substrate for the Cocoon reproduction: the abstract syntax, renderer,
//! parser, evaluator and executor for the SQL dialect the cleaning pipeline
//! emits.
//!
//! The paper's system performs every cleaning step "using SQL queries. The
//! final output is a set of well-commented SQL queries" (§2.2, Figure 5).
//! Each issue type compiles to one of a small family of shapes:
//!
//! | paper step | SQL shape |
//! |---|---|
//! | string outliers / DMV / FD repair / numeric thresholds | `CASE WHEN` |
//! | column type | `CAST` / `TRY_CAST` |
//! | pattern outliers | `REGEXP_REPLACE` |
//! | duplication | `SELECT DISTINCT` |
//! | column uniqueness | `QUALIFY ROW_NUMBER() OVER (…) <= k` |
//!
//! [`ast`] models these, [`render`] pretty-prints them (with the reasoning
//! comments of Figure 5), [`parser`] reads the emitted dialect back, and
//! [`exec`]/[`eval`](mod@eval) run them against [`cocoon_table::Table`]s
//! with SQL
//! NULL/three-valued-logic semantics.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod render;

pub use ast::{BinaryOp, Expr, Projection, RowNumberFilter, Select, SortOrder, UnaryOp};
pub use error::{Result, SqlError};
pub use eval::{eval, eval_column, infer_expr_type, RowContext, Selection};
pub use exec::{execute, execute_rowwise};
pub use parser::{parse_expr, parse_select};
pub use render::{quote_ident, quote_string, render_expr, render_select, render_value};
