//! Expression evaluation against table rows.
//!
//! Implements SQL-style three-valued logic: comparisons involving NULL yield
//! NULL, `AND`/`OR` follow Kleene logic, and a `WHERE` keeps a row only when
//! its predicate is exactly TRUE.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::{Result, SqlError};
use crate::functions;
use cocoon_table::{Column, DataType, Schema, Table, Value};
use std::collections::{HashMap, HashSet};

/// A row-binding context for expression evaluation.
pub struct RowContext<'a> {
    table: &'a Table,
    row: usize,
}

impl<'a> RowContext<'a> {
    /// Binds evaluation to `row` of `table`.
    pub fn new(table: &'a Table, row: usize) -> Self {
        RowContext { table, row }
    }

    fn column_value(&self, name: &str) -> Result<Value> {
        let idx = self
            .table
            .schema()
            .index_of(name)
            .map_err(|_| SqlError::UnknownColumn(name.to_string()))?;
        Ok(self.table.cell(self.row, idx)?.clone())
    }
}

/// Evaluates `expr` for one row.
pub fn eval(expr: &Expr, ctx: &RowContext<'_>) -> Result<Value> {
    match expr {
        Expr::Column(name) => ctx.column_value(name),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            eval_unary(*op, v)
        }
        Expr::Binary { op, left, right } => {
            // Short-circuit logical operators must respect 3VL.
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    let l = eval(left, ctx)?;
                    let r = eval(right, ctx)?;
                    Ok(eval_logic(*op, l, r))
                }
                _ => {
                    let l = eval(left, ctx)?;
                    let r = eval(right, ctx)?;
                    eval_binary(*op, l, r)
                }
            }
        }
        Expr::Case { operand, arms, otherwise } => {
            match operand {
                Some(op) => {
                    let subject = eval(op, ctx)?;
                    for (when, then) in arms {
                        let candidate = eval(when, ctx)?;
                        if subject.sql_eq(&candidate) {
                            return eval(then, ctx);
                        }
                    }
                }
                None => {
                    for (when, then) in arms {
                        if matches!(eval(when, ctx)?, Value::Bool(true)) {
                            return eval(then, ctx);
                        }
                    }
                }
            }
            match otherwise {
                Some(e) => eval(e, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty, lenient } => {
            let v = eval(expr, ctx)?;
            match v.cast(*ty) {
                Ok(cast) => Ok(cast),
                Err(_) if *lenient => Ok(Value::Null),
                Err(e) => Err(SqlError::Type {
                    context: format!("CAST to {}", ty.sql_name()),
                    value: e.to_string(),
                }),
            }
        }
        Expr::Func { name, args } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval(a, ctx)?);
            }
            functions::call(name, &values)
        }
        Expr::InList { expr, list, negated } => {
            let subject = eval(expr, ctx)?;
            if subject.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let candidate = eval(item, ctx)?;
                if candidate.is_null() {
                    saw_null = true;
                } else if subject == candidate {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    Ok(match op {
        UnaryOp::IsNull => Value::Bool(v.is_null()),
        UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
        UnaryOp::Not => match v {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => return Err(SqlError::Type { context: "NOT".into(), value: other.render() }),
        },
        UnaryOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            other => {
                return Err(SqlError::Type { context: "negation".into(), value: other.render() })
            }
        },
    })
}

fn eval_logic(op: BinaryOp, l: Value, r: Value) -> Value {
    let lb = l.as_bool();
    let rb = r.as_bool();
    match op {
        BinaryOp::And => match (lb, rb, l.is_null(), r.is_null()) {
            (Some(false), _, _, _) | (_, Some(false), _, _) => Value::Bool(false),
            (Some(true), Some(true), _, _) => Value::Bool(true),
            _ => Value::Null,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!("eval_logic only handles AND/OR"),
    }
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinaryOp::Eq => Ok(Value::Bool(l == r)),
        BinaryOp::Ne => Ok(Value::Bool(l != r)),
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let ord = compare(&l, &r)?;
            Ok(Value::Bool(match op {
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::Le => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => arithmetic(op, &l, &r),
        BinaryOp::And | BinaryOp::Or => unreachable!("handled by eval_logic"),
    }
}

fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    // Numeric cross-type comparison, otherwise same-type ordering.
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => a
            .partial_cmp(&b)
            .ok_or(SqlError::Type { context: "comparison".into(), value: "NaN".into() }),
        _ => {
            if l.data_type() == r.data_type() {
                Ok(l.cmp(r))
            } else {
                Err(SqlError::Type {
                    context: "comparison".into(),
                    value: format!("{} vs {}", l.render(), r.render()),
                })
            }
        }
    }
}

fn arithmetic(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinaryOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinaryOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinaryOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinaryOp::Div => {
                if *b == 0 {
                    Err(SqlError::DivisionByZero)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(SqlError::Type {
                        context: "arithmetic".into(),
                        value: format!("{} {} {}", l.render(), op.sql(), r.render()),
                    })
                }
            };
            Ok(Value::Float(match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::DivisionByZero);
                    }
                    a / b
                }
                _ => unreachable!(),
            }))
        }
    }
}

/// The set of rows a columnar operator works over: either every row of the
/// table (the common case, which enables zero-copy column pass-through) or
/// an explicit ordered subset (the survivors of `WHERE` / `QUALIFY`).
#[derive(Debug, Clone)]
pub enum Selection<'a> {
    /// All rows of a table with this height.
    All(usize),
    /// An explicit subset, in output order.
    Rows(&'a [usize]),
}

impl Selection<'_> {
    /// Number of selected rows.
    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            Selection::All(n) => *n,
            Selection::Rows(rows) => rows.len(),
        }
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the selection covers every row in original order, so a
    /// pass-through projection can share the column instead of gathering.
    pub fn is_all(&self) -> bool {
        matches!(self, Selection::All(_))
    }

    /// Iterates the selected row indices in output order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let (range, rows) = match self {
            Selection::All(n) => (0..*n, [].as_slice()),
            Selection::Rows(rows) => (0..0, *rows),
        };
        range.chain(rows.iter().copied())
    }
}

/// Evaluates `expr` column-at-a-time over the selected rows of `table`.
///
/// Literals, column references, casts, unary and binary operators
/// (comparison, arithmetic, `AND`/`OR`), function calls, and every `CASE`
/// shape — from literal value maps (`CASE col WHEN 'a' THEN 'b' … ELSE …`,
/// the workhorse of Cocoon cleaning) to general searched `CASE` — are
/// computed vectorised; only `IN` lists with non-literal items still fall
/// back to the row-wise [`eval`], which also serves as the semantic oracle
/// for the differential tests. Fast paths preserve row-wise *success*
/// semantics exactly, and error exactly when the row-wise path would —
/// though when several rows or nested subexpressions fail,
/// expression-at-a-time evaluation may surface a different one of those
/// errors than the strictly row-ordered oracle. Sequential-`CASE` laziness
/// is preserved by evaluating each arm only over the rows no earlier arm
/// matched (see `eval_case_lazy`).
pub fn eval_column(expr: &Expr, table: &Table, sel: &Selection<'_>) -> Result<Column> {
    match expr {
        Expr::Literal(v) => Ok(Column::new(vec![v.clone(); sel.len()])),
        Expr::Column(name) => {
            let idx = table
                .schema()
                .index_of(name)
                .map_err(|_| SqlError::UnknownColumn(name.to_string()))?;
            let values = table.column(idx)?.values();
            Ok(match sel {
                Selection::All(_) => Column::new(values.to_vec()),
                Selection::Rows(rows) => rows.iter().map(|&r| values[r].clone()).collect(),
            })
        }
        Expr::Cast { expr, ty, lenient } => {
            let input = eval_column(expr, table, sel)?;
            let mut out = Vec::with_capacity(input.len());
            for v in input.values() {
                match v.cast(*ty) {
                    Ok(cast) => out.push(cast),
                    Err(_) if *lenient => out.push(Value::Null),
                    Err(e) => {
                        return Err(SqlError::Type {
                            context: format!("CAST to {}", ty.sql_name()),
                            value: e.to_string(),
                        })
                    }
                }
            }
            Ok(Column::new(out))
        }
        Expr::Unary { op, expr } => {
            // Unary operators are value-wise: evaluate the operand column
            // once, then map. `IS [NOT] NULL` never errors; `NOT`/negation
            // error on exactly the rows the row-wise path would reject.
            let input = eval_column(expr, table, sel)?;
            input.into_values().into_iter().map(|v| eval_unary(*op, v)).collect()
        }
        Expr::Binary { op, left, right } => {
            // Binary operators are pairwise over their operand columns. The
            // row-wise evaluator computes both operands unconditionally
            // (`AND`/`OR` included — 3VL needs both sides), so evaluating
            // each side column-at-a-time preserves success/error semantics;
            // only *which* of several row errors surfaces may differ, as
            // the eval_column contract already allows.
            let lhs = eval_column(left, table, sel)?.into_values();
            let rhs = eval_column(right, table, sel)?.into_values();
            let zipped = lhs.into_iter().zip(rhs);
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    Ok(zipped.map(|(l, r)| eval_logic(*op, l, r)).collect())
                }
                _ => zipped.map(|(l, r)| eval_binary(*op, l, r)).collect(),
            }
        }
        Expr::Case { operand: Some(operand), arms, otherwise }
            if arms
                .iter()
                .all(|(w, t)| matches!(w, Expr::Literal(_)) && matches!(t, Expr::Literal(_)))
                && value_map_fallback_is_safe(operand, otherwise.as_deref()) =>
        {
            eval_value_map(operand, arms, otherwise.as_deref(), table, sel)
        }
        Expr::InList { expr, list, negated }
            if list.iter().all(|item| matches!(item, Expr::Literal(_))) =>
        {
            // Literal-only `IN` lists (the shape every compiled Cocoon
            // filter emits): one hash probe per row instead of a linear
            // scan of the list. `Value`'s `Hash`/`Eq` agree with the
            // row-wise `==` (Int/Float cross-type included); NULL literals
            // never enter the set — under 3VL they only turn a miss into
            // NULL, exactly as the row-wise scan does.
            let mut set: HashSet<&Value> = HashSet::with_capacity(list.len());
            let mut saw_null = false;
            for item in list {
                let Expr::Literal(v) = item else { unreachable!("guarded by the match arm") };
                if v.is_null() {
                    saw_null = true;
                } else {
                    set.insert(v);
                }
            }
            let subject = eval_column(expr, table, sel)?;
            Ok(subject
                .into_values()
                .into_iter()
                .map(|v| {
                    if v.is_null() {
                        Value::Null
                    } else if set.contains(&v) {
                        Value::Bool(!negated)
                    } else if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(*negated)
                    }
                })
                .collect())
        }
        Expr::Case { operand, arms, otherwise } => {
            eval_case_lazy(operand.as_deref(), arms, otherwise.as_deref(), table, sel)
        }
        Expr::Func { name, args } => {
            // Row-wise `Func` evaluates every argument unconditionally, so
            // computing each argument column-at-a-time preserves
            // success/error semantics; the scalar function itself is then
            // applied per row (the functions are cheap — the win is the
            // vectorised argument evaluation underneath).
            let cols =
                args.iter().map(|a| eval_column(a, table, sel)).collect::<Result<Vec<Column>>>()?;
            let mut out = Vec::with_capacity(sel.len());
            let mut row_args = Vec::with_capacity(cols.len());
            for i in 0..sel.len() {
                row_args.clear();
                row_args.extend(cols.iter().map(|c| c.values()[i].clone()));
                out.push(functions::call(name, &row_args)?);
            }
            Ok(Column::new(out))
        }
        _ => sel.iter().map(|row| eval(expr, &RowContext::new(table, row))).collect(),
    }
}

/// Vectorised general `CASE`, preserving sequential laziness: each arm's
/// `WHEN` is evaluated only over the rows no earlier arm matched, each
/// `THEN` only over the rows its arm matched, and `ELSE` only over the
/// rows left after every arm — exactly the rows on which the row-wise
/// evaluator would touch those subexpressions, so an error in a branch a
/// row never reaches cannot leak into that row's result.
fn eval_case_lazy(
    operand: Option<&Expr>,
    arms: &[(Expr, Expr)],
    otherwise: Option<&Expr>,
    table: &Table,
    sel: &Selection<'_>,
) -> Result<Column> {
    let n = sel.len();
    let mut out: Vec<Value> = vec![Value::Null; n];
    // Unmatched rows, paired with their slots in the output column. Both
    // shrink together as arms claim rows.
    let mut rows: Vec<usize> = sel.iter().collect();
    let mut slots: Vec<usize> = (0..n).collect();
    // Simple CASE evaluates its subject first on every row, match or not.
    let subject = match operand {
        Some(op) => Some(eval_column(op, table, sel)?),
        None => None,
    };
    for (when, then) in arms {
        if rows.is_empty() {
            break;
        }
        let cond = eval_column(when, table, &Selection::Rows(&rows))?;
        let cond = cond.values();
        let (mut hit_rows, mut hit_slots) = (Vec::new(), Vec::new());
        let (mut miss_rows, mut miss_slots) = (Vec::new(), Vec::new());
        for (i, (&row, &slot)) in rows.iter().zip(&slots).enumerate() {
            let matched = match &subject {
                Some(subject) => subject.values()[slot].sql_eq(&cond[i]),
                None => matches!(cond[i], Value::Bool(true)),
            };
            if matched {
                hit_rows.push(row);
                hit_slots.push(slot);
            } else {
                miss_rows.push(row);
                miss_slots.push(slot);
            }
        }
        if !hit_rows.is_empty() {
            let then_col = eval_column(then, table, &Selection::Rows(&hit_rows))?;
            for (v, slot) in then_col.into_values().into_iter().zip(hit_slots) {
                out[slot] = v;
            }
        }
        rows = miss_rows;
        slots = miss_slots;
    }
    if let Some(otherwise) = otherwise {
        if !rows.is_empty() {
            let other = eval_column(otherwise, table, &Selection::Rows(&rows))?;
            for (v, slot) in other.into_values().into_iter().zip(slots) {
                out[slot] = v;
            }
        }
    }
    Ok(Column::new(out))
}

/// The vectorised value map evaluates `otherwise` for *every* row, while
/// sequential CASE only reaches it on rows no arm matched. That is only
/// safe when `otherwise` cannot raise an evaluation error: absent, a
/// literal, or the operand column itself (already evaluated as the
/// subject). Anything else takes the row-wise path.
fn value_map_fallback_is_safe(operand: &Expr, otherwise: Option<&Expr>) -> bool {
    match otherwise {
        None | Some(Expr::Literal(_)) => true,
        Some(o) => o == operand,
    }
}

/// Vectorised literal value map: one hash lookup per cell instead of a
/// linear scan of the arms. `Value`'s `Hash`/`Eq` agree with `sql_eq` for
/// non-null values (Int/Float cross-type included), and a NULL subject
/// matches no arm under `sql_eq` — so routing NULL subjects to the
/// `otherwise` branch reproduces simple-`CASE` semantics exactly.
fn eval_value_map(
    operand: &Expr,
    arms: &[(Expr, Expr)],
    otherwise: Option<&Expr>,
    table: &Table,
    sel: &Selection<'_>,
) -> Result<Column> {
    let mut map: HashMap<&Value, &Value> = HashMap::with_capacity(arms.len());
    for (when, then) in arms {
        let (Expr::Literal(w), Expr::Literal(t)) = (when, then) else {
            unreachable!("guarded by the caller");
        };
        if !w.is_null() {
            // First arm wins on duplicate keys, as in sequential CASE.
            map.entry(w).or_insert(t);
        }
    }
    let subject = eval_column(operand, table, sel)?;
    // The common cleaning shape ends `ELSE <operand>`; reuse the already
    // materialised subject column instead of evaluating it again.
    let reuse_subject = otherwise == Some(operand);
    let fallback: Option<Column> = match otherwise {
        Some(o) if !reuse_subject => Some(eval_column(o, table, sel)?),
        _ => None,
    };
    let out = subject
        .into_values()
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            if !v.is_null() {
                if let Some(mapped) = map.get(&v) {
                    return (*mapped).clone();
                }
            }
            if reuse_subject {
                v
            } else {
                fallback.as_ref().map_or(Value::Null, |f| f.values()[i].clone())
            }
        })
        .collect();
    Ok(out)
}

/// Infers the output type of an expression against a schema (used to type
/// the columns of executed `SELECT`s).
pub fn infer_expr_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Column(name) => {
            schema.field_by_name(name).map(|f| f.data_type()).unwrap_or(DataType::Text)
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
        Expr::Cast { ty, .. } => *ty,
        Expr::Unary { op, .. } => match op {
            UnaryOp::IsNull | UnaryOp::IsNotNull | UnaryOp::Not => DataType::Bool,
            UnaryOp::Neg => DataType::Float,
        },
        Expr::Binary { op, left, .. } => match op {
            BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => DataType::Bool,
            _ => infer_expr_type(left, schema),
        },
        Expr::Case { arms, otherwise, .. } => {
            // Literal NULL branches carry no type information; the first
            // typed branch decides (e.g. `CASE WHEN … THEN NULL ELSE col
            // END` keeps col's type).
            let mut branches: Vec<&Expr> = arms.iter().map(|(_, then)| then).collect();
            if let Some(o) = otherwise {
                branches.push(o);
            }
            branches
                .iter()
                .find(|b| !matches!(b, Expr::Literal(Value::Null)))
                .map(|b| infer_expr_type(b, schema))
                .unwrap_or(DataType::Text)
        }
        Expr::Func { name, .. } => match name.as_str() {
            "LENGTH" => DataType::Int,
            "REGEXP_MATCHES" | "REGEXP_FULL_MATCH" => DataType::Bool,
            "ABS" | "ROUND" => DataType::Float,
            _ => DataType::Text,
        },
        Expr::InList { .. } => DataType::Bool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let rows: Vec<Vec<String>> =
            vec![vec!["1".into(), "eng".into()], vec!["2".into(), "English".into()]];
        let mut t = Table::from_text_rows(&["id", "lang"], &rows).unwrap();
        t.set_cell(1, 0, Value::Int(2)).unwrap();
        t
    }

    fn eval_on(expr: &Expr, row: usize) -> Result<Value> {
        let t = table();
        let ctx = RowContext::new(&t, row);
        eval(expr, &ctx)
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(eval_on(&Expr::col("lang"), 0).unwrap(), Value::from("eng"));
        assert_eq!(eval_on(&Expr::lit(5i64), 0).unwrap(), Value::Int(5));
        assert!(matches!(eval_on(&Expr::col("missing"), 0), Err(SqlError::UnknownColumn(_))));
    }

    #[test]
    fn case_value_map() {
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        assert_eq!(eval_on(&map, 0).unwrap(), Value::from("eng"));
        assert_eq!(eval_on(&map, 1).unwrap(), Value::from("eng"));
    }

    #[test]
    fn searched_case_falls_through() {
        let e = Expr::Case {
            operand: None,
            arms: vec![(Expr::eq(Expr::col("lang"), Expr::lit("zzz")), Expr::lit("matched"))],
            otherwise: None,
        };
        assert_eq!(eval_on(&e, 0).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let null = Expr::null();
        let truth = Expr::lit(true);
        let falsity = Expr::lit(false);
        assert_eq!(
            eval_on(&Expr::and(null.clone(), falsity.clone()), 0).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(eval_on(&Expr::and(null.clone(), truth.clone()), 0).unwrap(), Value::Null);
        assert_eq!(eval_on(&Expr::or(null.clone(), truth), 0).unwrap(), Value::Bool(true));
        assert_eq!(eval_on(&Expr::or(null.clone(), falsity), 0).unwrap(), Value::Null);
        // NULL = NULL is NULL, not true.
        assert_eq!(eval_on(&Expr::eq(null.clone(), null), 0).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_and_arithmetic() {
        let e = Expr::binary(BinaryOp::Lt, Expr::lit(1i64), Expr::lit(2i64));
        assert_eq!(eval_on(&e, 0).unwrap(), Value::Bool(true));
        let e = Expr::binary(BinaryOp::Add, Expr::lit(1i64), Expr::lit(2i64));
        assert_eq!(eval_on(&e, 0).unwrap(), Value::Int(3));
        let e = Expr::binary(BinaryOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert!(matches!(eval_on(&e, 0), Err(SqlError::DivisionByZero)));
        let e = Expr::binary(BinaryOp::Mul, Expr::lit(2.5), Expr::lit(2i64));
        assert_eq!(eval_on(&e, 0).unwrap(), Value::Float(5.0));
    }

    #[test]
    fn cast_strict_vs_lenient() {
        let strict = Expr::cast(Expr::col("lang"), DataType::Int);
        assert!(eval_on(&strict, 0).is_err());
        let lenient = Expr::try_cast(Expr::col("lang"), DataType::Int);
        assert_eq!(eval_on(&lenient, 0).unwrap(), Value::Null);
        let ok = Expr::cast(Expr::col("id"), DataType::Int);
        assert_eq!(eval_on(&ok, 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn in_list_semantics() {
        let e = Expr::InList {
            expr: Box::new(Expr::col("lang")),
            list: vec![Expr::lit("eng"), Expr::lit("fre")],
            negated: false,
        };
        assert_eq!(eval_on(&e, 0).unwrap(), Value::Bool(true));
        assert_eq!(eval_on(&e, 1).unwrap(), Value::Bool(false));
        // NULL in list makes a miss NULL.
        let e = Expr::InList {
            expr: Box::new(Expr::col("lang")),
            list: vec![Expr::lit("zzz"), Expr::null()],
            negated: false,
        };
        assert_eq!(eval_on(&e, 0).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        assert_eq!(eval_on(&Expr::is_null(Expr::null()), 0).unwrap(), Value::Bool(true));
        assert_eq!(eval_on(&Expr::is_null(Expr::col("lang")), 0).unwrap(), Value::Bool(false));
    }

    #[test]
    fn unary_exprs_vectorise_and_match_rowwise() {
        let mut t = table();
        t.set_cell(0, 1, Value::Null).unwrap();
        for expr in [
            Expr::is_null(Expr::col("lang")),
            Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(Expr::col("lang")) },
            Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::is_null(Expr::col("lang"))) },
            Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::try_cast(Expr::col("id"), DataType::Int)),
            },
        ] {
            for sel in [Selection::All(t.height()), Selection::Rows(&[1]), Selection::Rows(&[])] {
                let columnar = eval_column(&expr, &t, &sel).unwrap();
                let rowwise: Vec<Value> =
                    sel.iter().map(|row| eval(&expr, &RowContext::new(&t, row)).unwrap()).collect();
                assert_eq!(columnar.values(), &rowwise[..], "{expr:?}");
            }
        }
    }

    #[test]
    fn binary_exprs_vectorise_and_match_rowwise() {
        let mut t = table();
        t.set_cell(0, 1, Value::Null).unwrap();
        let id_int = || Expr::try_cast(Expr::col("id"), DataType::Int);
        for expr in [
            Expr::eq(Expr::col("lang"), Expr::lit("eng")),
            Expr::binary(BinaryOp::Ne, Expr::col("lang"), Expr::lit("eng")),
            Expr::binary(BinaryOp::Lt, id_int(), Expr::lit(2i64)),
            Expr::binary(BinaryOp::Ge, id_int(), Expr::lit(2i64)),
            Expr::binary(BinaryOp::Add, id_int(), Expr::lit(10i64)),
            Expr::binary(BinaryOp::Mul, id_int(), Expr::lit(2.5)),
            Expr::and(Expr::is_null(Expr::col("lang")), Expr::lit(true)),
            Expr::or(Expr::is_null(Expr::col("lang")), Expr::null()),
            // Nested: (id + 1) = 2 AND lang IS NOT NULL.
            Expr::and(
                Expr::eq(Expr::binary(BinaryOp::Add, id_int(), Expr::lit(1i64)), Expr::lit(2i64)),
                Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(Expr::col("lang")) },
            ),
        ] {
            for sel in [Selection::All(t.height()), Selection::Rows(&[1]), Selection::Rows(&[])] {
                let columnar = eval_column(&expr, &t, &sel).unwrap();
                let rowwise: Vec<Value> =
                    sel.iter().map(|row| eval(&expr, &RowContext::new(&t, row)).unwrap()).collect();
                assert_eq!(columnar.values(), &rowwise[..], "{expr:?}");
            }
        }
    }

    #[test]
    fn in_list_vectorises_and_matches_rowwise() {
        let mut t = table();
        t.set_cell(0, 1, Value::Null).unwrap();
        let in_list = |expr: Expr, list: Vec<Expr>, negated: bool| Expr::InList {
            expr: Box::new(expr),
            list,
            negated,
        };
        let id_int = || Expr::try_cast(Expr::col("id"), DataType::Int);
        for expr in [
            in_list(Expr::col("lang"), vec![Expr::lit("eng"), Expr::lit("fre")], false),
            in_list(Expr::col("lang"), vec![Expr::lit("eng"), Expr::lit("fre")], true),
            // NULL subject row 0 → NULL either way.
            in_list(Expr::col("lang"), vec![Expr::lit("English")], false),
            // NULL in the list turns misses into NULL, hits stay Bool.
            in_list(Expr::col("lang"), vec![Expr::lit("English"), Expr::null()], false),
            in_list(Expr::col("lang"), vec![Expr::lit("zzz"), Expr::null()], true),
            // Int/Float cross-type hash agreement.
            in_list(id_int(), vec![Expr::lit(1.0), Expr::lit(7i64)], false),
            // Empty list: always a (possibly negated) miss.
            in_list(Expr::col("lang"), vec![], false),
            // Non-literal list items take the row-wise fallback.
            in_list(Expr::col("lang"), vec![Expr::col("lang")], false),
        ] {
            for sel in [Selection::All(t.height()), Selection::Rows(&[1]), Selection::Rows(&[])] {
                let columnar = eval_column(&expr, &t, &sel).unwrap();
                let rowwise: Vec<Value> =
                    sel.iter().map(|row| eval(&expr, &RowContext::new(&t, row)).unwrap()).collect();
                assert_eq!(columnar.values(), &rowwise[..], "{expr:?}");
            }
        }
    }

    #[test]
    fn searched_case_vectorises_and_matches_rowwise() {
        let mut t = table();
        t.set_cell(0, 1, Value::Null).unwrap();
        let id_int = || Expr::try_cast(Expr::col("id"), DataType::Int);
        for expr in [
            // Plain searched CASE with fall-through and ELSE.
            Expr::Case {
                operand: None,
                arms: vec![
                    (Expr::eq(Expr::col("lang"), Expr::lit("English")), Expr::lit("eng")),
                    (Expr::binary(BinaryOp::Lt, id_int(), Expr::lit(2i64)), Expr::lit("low")),
                ],
                otherwise: Some(Box::new(Expr::col("lang"))),
            },
            // No ELSE: unmatched rows yield NULL.
            Expr::Case {
                operand: None,
                arms: vec![(Expr::eq(id_int(), Expr::lit(1i64)), Expr::col("lang"))],
                otherwise: None,
            },
            // NULL condition counts as a miss, like row-wise.
            Expr::Case {
                operand: None,
                arms: vec![(Expr::is_null(Expr::col("lang")), Expr::lit("was null"))],
                otherwise: Some(Box::new(Expr::lit("had text"))),
            },
            // Simple CASE whose arms are not literals (outside the
            // value-map fast path): compares via sql_eq per arm.
            Expr::Case {
                operand: Some(Box::new(Expr::col("lang"))),
                arms: vec![(Expr::col("lang"), Expr::lit("self"))],
                otherwise: Some(Box::new(Expr::lit("null subject"))),
            },
            // Nested CASE in a THEN branch.
            Expr::Case {
                operand: None,
                arms: vec![(
                    Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(Expr::col("lang")) },
                    Expr::Case {
                        operand: None,
                        arms: vec![(
                            Expr::eq(Expr::col("lang"), Expr::lit("English")),
                            Expr::lit("eng"),
                        )],
                        otherwise: Some(Box::new(Expr::col("lang"))),
                    },
                )],
                otherwise: None,
            },
        ] {
            for sel in [Selection::All(t.height()), Selection::Rows(&[1]), Selection::Rows(&[])] {
                let columnar = eval_column(&expr, &t, &sel).unwrap();
                let rowwise: Vec<Value> =
                    sel.iter().map(|row| eval(&expr, &RowContext::new(&t, row)).unwrap()).collect();
                assert_eq!(columnar.values(), &rowwise[..], "{expr:?}");
            }
        }
    }

    #[test]
    fn case_arms_stay_lazy_per_row() {
        // Row 0 ("eng") matches arm 1; arm 2's CAST would error on it but
        // must never be evaluated there — only row 1 ("5") reaches arm 2.
        let rows: Vec<Vec<String>> = vec![vec!["eng".into()], vec!["5".into()]];
        let t = Table::from_text_rows(&["s"], &rows).unwrap();
        let expr = Expr::Case {
            operand: None,
            arms: vec![
                (Expr::eq(Expr::col("s"), Expr::lit("eng")), Expr::lit("hit")),
                (
                    Expr::binary(
                        BinaryOp::Gt,
                        Expr::cast(Expr::col("s"), DataType::Int),
                        Expr::lit(0i64),
                    ),
                    Expr::lit("pos"),
                ),
            ],
            otherwise: None,
        };
        let sel = Selection::All(t.height());
        let columnar = eval_column(&expr, &t, &sel).unwrap();
        assert_eq!(columnar.values(), &[Value::from("hit"), Value::from("pos")]);
        // ELSE likewise: only evaluated on rows no arm claimed.
        let expr = Expr::Case {
            operand: None,
            arms: vec![(Expr::eq(Expr::col("s"), Expr::lit("eng")), Expr::lit("hit"))],
            otherwise: Some(Box::new(Expr::cast(Expr::col("s"), DataType::Int))),
        };
        let columnar = eval_column(&expr, &t, &sel).unwrap();
        assert_eq!(columnar.values(), &[Value::from("hit"), Value::Int(5)]);
        // But an error on a row that genuinely reaches the branch still
        // surfaces, matching row-wise.
        let sel = Selection::Rows(&[0]);
        let expr = Expr::Case {
            operand: None,
            arms: vec![(Expr::lit(true), Expr::cast(Expr::col("s"), DataType::Int))],
            otherwise: None,
        };
        assert!(eval_column(&expr, &t, &sel).is_err());
        assert!(eval(&expr, &RowContext::new(&t, 0)).is_err());
    }

    #[test]
    fn func_calls_vectorise_and_match_rowwise() {
        let mut t = table();
        t.set_cell(0, 1, Value::Null).unwrap();
        for expr in [
            Expr::func("LENGTH", vec![Expr::col("lang")]),
            Expr::func("UPPER", vec![Expr::col("lang")]),
            Expr::func("CONCAT", vec![Expr::col("lang"), Expr::lit("!")]),
            Expr::func("COALESCE", vec![Expr::col("lang"), Expr::lit("fallback")]),
            Expr::func("NULLIF", vec![Expr::col("lang"), Expr::lit("English")]),
            Expr::func("ABS", vec![Expr::try_cast(Expr::col("id"), DataType::Int)]),
            // Nested: function of a function.
            Expr::func("LENGTH", vec![Expr::func("TRIM", vec![Expr::col("lang")])]),
        ] {
            for sel in [Selection::All(t.height()), Selection::Rows(&[1]), Selection::Rows(&[])] {
                let columnar = eval_column(&expr, &t, &sel).unwrap();
                let rowwise: Vec<Value> =
                    sel.iter().map(|row| eval(&expr, &RowContext::new(&t, row)).unwrap()).collect();
                assert_eq!(columnar.values(), &rowwise[..], "{expr:?}");
            }
        }
        // Errors surface in both paths: ABS of text, unknown function.
        for expr in [
            Expr::func("ABS", vec![Expr::col("lang")]),
            Expr::func("NO_SUCH_FN", vec![Expr::col("lang")]),
        ] {
            assert!(eval_column(&expr, &t, &Selection::Rows(&[1])).is_err(), "{expr:?}");
            assert!(eval(&expr, &RowContext::new(&t, 1)).is_err(), "{expr:?}");
        }
    }

    #[test]
    fn binary_errors_match_rowwise() {
        let t = table();
        for expr in [
            // Arithmetic on text errors on every row in both paths.
            Expr::binary(BinaryOp::Add, Expr::col("lang"), Expr::lit(1i64)),
            // Division by a zero literal.
            Expr::binary(BinaryOp::Div, Expr::lit(1i64), Expr::lit(0i64)),
            // Untyped comparison: text vs bool.
            Expr::binary(BinaryOp::Lt, Expr::col("lang"), Expr::lit(true)),
        ] {
            assert!(eval_column(&expr, &t, &Selection::All(t.height())).is_err(), "{expr:?}");
            assert!(eval(&expr, &RowContext::new(&t, 0)).is_err(), "{expr:?}");
        }
    }

    #[test]
    fn unary_errors_match_rowwise() {
        let t = table();
        // NOT of a text column errors both paths.
        let expr = Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::col("lang")) };
        assert!(eval_column(&expr, &t, &Selection::All(t.height())).is_err());
        assert!(eval(&expr, &RowContext::new(&t, 0)).is_err());
        // Negating text errors too.
        let expr = Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::col("lang")) };
        assert!(eval_column(&expr, &t, &Selection::All(t.height())).is_err());
    }

    #[test]
    fn type_inference() {
        let t = table();
        let schema = t.schema();
        assert_eq!(infer_expr_type(&Expr::col("lang"), schema), DataType::Text);
        assert_eq!(
            infer_expr_type(&Expr::cast(Expr::col("lang"), DataType::Bool), schema),
            DataType::Bool
        );
        assert_eq!(
            infer_expr_type(&Expr::eq(Expr::col("lang"), Expr::lit("x")), schema),
            DataType::Bool
        );
        assert_eq!(
            infer_expr_type(&Expr::func("LENGTH", vec![Expr::col("lang")]), schema),
            DataType::Int
        );
    }
}
