//! Rendering ASTs back to SQL text.
//!
//! The final artifact of the paper's pipeline is "a set of well-commented
//! SQL queries" (Figure 5); this module produces them. The output is valid
//! input for this crate's [parser](crate::parser), giving a round-trip
//! property the tests rely on.

use crate::ast::{BinaryOp, Expr, Projection, RowNumberFilter, Select, SortOrder, UnaryOp};
use cocoon_table::Value;

/// Quotes a SQL string literal (single quotes, doubled to escape).
pub fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

/// Quotes an identifier with double quotes when it isn't a plain identifier.
pub fn quote_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        name.to_string()
    } else {
        let mut out = String::with_capacity(name.len() + 2);
        out.push('"');
        for c in name.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    }
}

/// Renders a literal value as SQL.
pub fn render_value(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Date(d) => format!("DATE {}", quote_string(&d.to_iso())),
        Value::Time(t) => format!("TIME {}", quote_string(&t.to_hhmm())),
        Value::Text(s) => quote_string(s),
    }
}

fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            3
        }
        BinaryOp::Add | BinaryOp::Sub => 4,
        BinaryOp::Mul | BinaryOp::Div => 5,
    }
}

/// Renders an expression as SQL, parenthesising by precedence.
pub fn render_expr(expr: &Expr) -> String {
    render_prec(expr, 0)
}

fn render_prec(expr: &Expr, parent: u8) -> String {
    match expr {
        Expr::Column(name) => quote_ident(name),
        Expr::Literal(v) => render_value(v),
        Expr::Unary { op, expr } => match op {
            // Prefix operators are parenthesised as a whole when they feed a
            // postfix context (`(NOT x) IN (…)`, `(-x) IS NULL`): otherwise
            // the postfix operator would re-associate under the prefix.
            UnaryOp::Not => {
                let text = format!("NOT ({})", render_prec(expr, 0));
                if parent > 0 {
                    format!("({text})")
                } else {
                    text
                }
            }
            UnaryOp::Neg => {
                let text = format!("-({})", render_prec(expr, 0));
                if parent > 0 {
                    format!("({text})")
                } else {
                    text
                }
            }
            // Postfix tests parenthesise as a whole inside comparisons and
            // arithmetic: `a = (b IS NULL)`, never `a = b IS NULL`.
            UnaryOp::IsNull => {
                let text = format!("{} IS NULL", render_prec(expr, 6));
                if parent >= 3 {
                    format!("({text})")
                } else {
                    text
                }
            }
            UnaryOp::IsNotNull => {
                let text = format!("{} IS NOT NULL", render_prec(expr, 6));
                if parent >= 3 {
                    format!("({text})")
                } else {
                    text
                }
            }
        },
        Expr::Binary { op, left, right } => {
            let prec = precedence(*op);
            // Comparisons are non-associative in the grammar: a nested
            // comparison on either side must be parenthesised
            // (`(a = b) = c`, never `a = b = c`).
            let left_prec = if prec == 3 { prec + 1 } else { prec };
            let text = format!(
                "{} {} {}",
                render_prec(left, left_prec),
                op.sql(),
                render_prec(right, prec + 1)
            );
            if prec < parent {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Case { operand, arms, otherwise } => {
            let mut out = String::from("CASE");
            if let Some(op) = operand {
                out.push(' ');
                out.push_str(&render_prec(op, 0));
            }
            for (when, then) in arms {
                out.push_str(&format!(
                    "\n    WHEN {} THEN {}",
                    render_prec(when, 0),
                    render_prec(then, 0)
                ));
            }
            if let Some(other) = otherwise {
                out.push_str(&format!("\n    ELSE {}", render_prec(other, 0)));
            }
            out.push_str("\nEND");
            out
        }
        Expr::Cast { expr, ty, lenient } => {
            let kw = if *lenient { "TRY_CAST" } else { "CAST" };
            format!("{kw}({} AS {})", render_prec(expr, 0), ty.sql_name())
        }
        Expr::Func { name, args } => {
            let rendered: Vec<String> = args.iter().map(|a| render_prec(a, 0)).collect();
            format!("{name}({})", rendered.join(", "))
        }
        Expr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(|i| render_prec(i, 0)).collect();
            let text = format!(
                "{} {}IN ({})",
                render_prec(expr, 6),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            );
            if parent >= 3 {
                format!("({text})")
            } else {
                text
            }
        }
    }
}

/// Renders a `SELECT` statement, including its comment block.
pub fn render_select(select: &Select) -> String {
    let mut out = String::new();
    if let Some(comment) = &select.comment {
        for line in comment.lines() {
            out.push_str("-- ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("SELECT ");
    if select.distinct {
        out.push_str("DISTINCT ");
    }
    let projections: Vec<String> = select
        .projections
        .iter()
        .map(|p| match p {
            Projection::Star => "*".to_string(),
            Projection::Expr { expr, alias } => {
                let mut text = render_expr(expr);
                if let Some(alias) = alias {
                    text.push_str(" AS ");
                    text.push_str(&quote_ident(alias));
                }
                text
            }
        })
        .collect();
    out.push_str(&projections.join(",\n       "));
    out.push_str(&format!("\nFROM {}", quote_ident(&select.from)));
    if let Some(where_clause) = &select.where_clause {
        out.push_str(&format!("\nWHERE {}", render_expr(where_clause)));
    }
    if let Some(qualify) = &select.qualify {
        out.push_str(&format!("\nQUALIFY {}", render_qualify(qualify)));
    }
    out
}

fn render_qualify(filter: &RowNumberFilter) -> String {
    let partition: Vec<String> = filter.partition_by.iter().map(render_expr).collect();
    let order: Vec<String> = filter
        .order_by
        .iter()
        .map(|(e, dir)| {
            format!(
                "{} {}",
                render_expr(e),
                match dir {
                    SortOrder::Asc => "ASC",
                    SortOrder::Desc => "DESC",
                }
            )
        })
        .collect();
    let mut over = String::new();
    if !partition.is_empty() {
        over.push_str(&format!("PARTITION BY {}", partition.join(", ")));
    }
    if !order.is_empty() {
        if !over.is_empty() {
            over.push(' ');
        }
        over.push_str(&format!("ORDER BY {}", order.join(", ")));
    }
    format!("ROW_NUMBER() OVER ({over}) <= {}", filter.keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoon_table::DataType;

    #[test]
    fn string_quoting() {
        assert_eq!(quote_string("abc"), "'abc'");
        assert_eq!(quote_string("o'brien"), "'o''brien'");
    }

    #[test]
    fn ident_quoting() {
        assert_eq!(quote_ident("plain_name"), "plain_name");
        assert_eq!(quote_ident("has space"), "\"has space\"");
        assert_eq!(quote_ident("1starts_digit"), "\"1starts_digit\"");
        assert_eq!(quote_ident("has\"quote"), "\"has\"\"quote\"");
    }

    #[test]
    fn value_rendering() {
        assert_eq!(render_value(&Value::Null), "NULL");
        assert_eq!(render_value(&Value::Bool(true)), "TRUE");
        assert_eq!(render_value(&Value::Int(-3)), "-3");
        assert_eq!(render_value(&Value::Float(2.0)), "2.0");
        assert_eq!(render_value(&Value::Text("x".into())), "'x'");
    }

    #[test]
    fn case_when_rendering() {
        let map =
            Expr::value_map("article_language", &[(Value::from("English"), Value::from("eng"))]);
        let sql = render_expr(&map);
        assert!(sql.contains("CASE article_language"));
        assert!(sql.contains("WHEN 'English' THEN 'eng'"));
        assert!(sql.contains("ELSE article_language"));
        assert!(sql.trim_end().ends_with("END"));
    }

    #[test]
    fn precedence_parentheses() {
        // (a OR b) AND c must keep parentheses.
        let e = Expr::and(Expr::or(Expr::col("a"), Expr::col("b")), Expr::col("c"));
        assert_eq!(render_expr(&e), "(a OR b) AND c");
        // a OR (b AND c) needs none.
        let e = Expr::or(Expr::col("a"), Expr::and(Expr::col("b"), Expr::col("c")));
        assert_eq!(render_expr(&e), "a OR b AND c");
    }

    #[test]
    fn cast_rendering() {
        let e = Expr::cast(Expr::col("x"), DataType::Bool);
        assert_eq!(render_expr(&e), "CAST(x AS BOOLEAN)");
        let e = Expr::try_cast(Expr::col("x"), DataType::Int);
        assert_eq!(render_expr(&e), "TRY_CAST(x AS BIGINT)");
    }

    #[test]
    fn select_with_comment_and_qualify() {
        let select = Select {
            distinct: false,
            projections: vec![Projection::Star],
            from: "t".into(),
            where_clause: Some(Expr::is_null(Expr::col("a"))),
            qualify: Some(RowNumberFilter {
                partition_by: vec![Expr::col("id")],
                order_by: vec![(Expr::col("updated"), SortOrder::Desc)],
                keep: 1,
            }),
            comment: Some("keep latest row per id\nsecond line".into()),
        };
        let sql = render_select(&select);
        assert!(sql.starts_with("-- keep latest row per id\n-- second line\n"));
        assert!(sql.contains("WHERE a IS NULL"));
        assert!(
            sql.contains("QUALIFY ROW_NUMBER() OVER (PARTITION BY id ORDER BY updated DESC) <= 1")
        );
    }

    #[test]
    fn distinct_rendering() {
        let mut s = Select::star("t");
        s.distinct = true;
        assert!(render_select(&s).starts_with("SELECT DISTINCT *"));
    }

    #[test]
    fn in_list_rendering() {
        let e = Expr::InList {
            expr: Box::new(Expr::col("v")),
            list: vec![Expr::lit("N/A"), Expr::lit("null")],
            negated: true,
        };
        assert_eq!(render_expr(&e), "v NOT IN ('N/A', 'null')");
    }
}
