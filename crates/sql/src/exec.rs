//! Executing `SELECT` statements against in-memory tables.
//!
//! [`execute`] is the production path: it drives `WHERE`/`QUALIFY` through
//! a selection vector (row indices, never an intermediate table) and
//! computes each projection column-at-a-time via [`eval_column`], sharing
//! untouched columns with the input table (`Arc` pass-through) instead of
//! cloning cells. [`execute_rowwise`] is the original cell-by-cell
//! implementation, kept as the semantic oracle the differential property
//! tests compare against.

use crate::ast::{Projection, RowNumberFilter, Select, SortOrder};
use crate::error::Result;
use crate::eval::{eval, eval_column, infer_expr_type, RowContext, Selection};
use crate::render::render_expr;
use cocoon_table::{Column, Field, Schema, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Executes `select` against `input`, producing a new table.
///
/// Evaluation order matches SQL semantics for the supported subset:
/// `WHERE` → window `QUALIFY` filter → projection → `DISTINCT`.
pub fn execute(select: &Select, input: &Table) -> Result<Table> {
    // WHERE: keep rows whose predicate is exactly TRUE. The predicate is
    // evaluated as a column; surviving rows become the selection vector.
    let height = input.height();
    let filtered: Option<Vec<usize>> = match &select.where_clause {
        Some(pred) if height > 0 => {
            let mask = eval_column(pred, input, &Selection::All(height))?;
            Some(
                mask.values()
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| matches!(v, Value::Bool(true)))
                    .map(|(r, _)| r)
                    .collect(),
            )
        }
        Some(_) => Some(Vec::new()),
        None => None,
    };

    // QUALIFY: row_number() over (partition by … order by …) <= keep.
    let qualified: Option<Vec<usize>> = match &select.qualify {
        Some(filter) => {
            let rows: Vec<usize> = match &filtered {
                Some(rows) => rows.clone(),
                None => (0..height).collect(),
            };
            Some(apply_row_number_filter(filter, input, &rows)?)
        }
        None => filtered,
    };
    let sel = match &qualified {
        Some(rows) => Selection::Rows(rows),
        None => Selection::All(height),
    };

    // Projection, column at a time.
    let schema = projected_schema(select, input)?;
    let mut columns: Vec<Arc<Column>> = Vec::with_capacity(schema.len());
    for projection in &select.projections {
        match projection {
            Projection::Star => {
                for c in 0..input.width() {
                    columns.push(pass_through(input, c, &sel)?);
                }
            }
            Projection::Expr { expr, .. } => match expr {
                // A bare column reference passes storage through.
                crate::ast::Expr::Column(name) if input.schema().contains(name) => {
                    let c = input.schema().index_of(name)?;
                    columns.push(pass_through(input, c, &sel)?);
                }
                // Row-wise execution never evaluates projections when no
                // row survives; mirror that (including its error
                // behaviour) by skipping evaluation entirely.
                _ if sel.is_empty() => columns.push(Arc::new(Column::default())),
                _ => columns.push(Arc::new(eval_column(expr, input, &sel)?)),
            },
        }
    }
    let mut table = Table::from_shared(schema, columns)?;

    if select.distinct {
        table.distinct();
    }
    Ok(table)
}

/// Projects input column `c` under `sel`: a full selection shares the
/// column's storage (`Arc` clone, zero cell copies); a subset gathers.
fn pass_through(input: &Table, c: usize, sel: &Selection<'_>) -> Result<Arc<Column>> {
    if sel.is_all() {
        return Ok(Arc::clone(input.shared_column(c)?));
    }
    let values = input.column(c)?.values();
    Ok(Arc::new(sel.iter().map(|r| values[r].clone()).collect()))
}

/// Executes `select` row by row, materialising every output cell — the
/// pre-columnar implementation, retained as the oracle for differential
/// testing of [`execute`].
pub fn execute_rowwise(select: &Select, input: &Table) -> Result<Table> {
    let mut keep: Vec<usize> = Vec::with_capacity(input.height());
    for row in 0..input.height() {
        let passes = match &select.where_clause {
            Some(pred) => {
                let ctx = RowContext::new(input, row);
                matches!(eval(pred, &ctx)?, Value::Bool(true))
            }
            None => true,
        };
        if passes {
            keep.push(row);
        }
    }

    if let Some(filter) = &select.qualify {
        keep = apply_row_number_filter(filter, input, &keep)?;
    }

    let schema = projected_schema(select, input)?;
    let mut columns: Vec<Column> = (0..schema.len()).map(|_| Column::default()).collect();
    for &row in &keep {
        let ctx = RowContext::new(input, row);
        let mut out_col = 0usize;
        for projection in &select.projections {
            match projection {
                Projection::Star => {
                    for c in 0..input.width() {
                        columns[out_col].push(input.cell(row, c)?.clone());
                        out_col += 1;
                    }
                }
                Projection::Expr { expr, .. } => {
                    columns[out_col].push(eval(expr, &ctx)?);
                    out_col += 1;
                }
            }
        }
    }
    let mut table = Table::new(schema, columns)?;

    if select.distinct {
        table.distinct();
    }
    Ok(table)
}

/// Builds the output schema for the projection list.
fn projected_schema(select: &Select, input: &Table) -> Result<Schema> {
    let mut fields: Vec<Field> = Vec::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    let mut push_field = |name: String, ty| {
        // Disambiguate duplicate output names deterministically.
        let n = used.entry(name.clone()).or_insert(0);
        let final_name = if *n == 0 { name.clone() } else { format!("{name}_{n}") };
        *n += 1;
        fields.push(Field::new(final_name, ty));
    };
    for projection in &select.projections {
        match projection {
            Projection::Star => {
                for field in input.schema().fields() {
                    push_field(field.name().to_string(), field.data_type());
                }
            }
            Projection::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr));
                push_field(name, infer_expr_type(expr, input.schema()));
            }
        }
    }
    Schema::new(fields).map_err(Into::into)
}

/// Output name for an unaliased projection: bare columns keep their name;
/// anything else uses its SQL rendering.
fn default_name(expr: &crate::ast::Expr) -> String {
    match expr {
        crate::ast::Expr::Column(name) => name.clone(),
        other => render_expr(other),
    }
}

/// Applies the ROW_NUMBER window filter over the surviving rows.
///
/// Partition and order keys are evaluated column-at-a-time over the
/// surviving selection, then grouped and sorted by index.
fn apply_row_number_filter(
    filter: &RowNumberFilter,
    input: &Table,
    rows: &[usize],
) -> Result<Vec<usize>> {
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let sel = Selection::Rows(rows);
    let partition_cols: Vec<Column> = filter
        .partition_by
        .iter()
        .map(|expr| eval_column(expr, input, &sel))
        .collect::<Result<_>>()?;
    let order_cols: Vec<Column> = filter
        .order_by
        .iter()
        .map(|(expr, _)| eval_column(expr, input, &sel))
        .collect::<Result<_>>()?;

    // Group selection positions by partition key.
    let mut partitions: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
    let mut partition_order: Vec<Vec<&Value>> = Vec::new();
    for i in 0..rows.len() {
        let key: Vec<&Value> = partition_cols.iter().map(|c| &c.values()[i]).collect();
        let entry = partitions.entry(key.clone()).or_default();
        if entry.is_empty() {
            partition_order.push(key);
        }
        entry.push(i);
    }

    // Order each partition and keep the first `keep` rows.
    let mut kept: Vec<usize> = Vec::new();
    for key in partition_order {
        let mut members = partitions.remove(&key).expect("partition recorded");
        members.sort_by(|&a, &b| {
            for (c, (_, dir)) in filter.order_by.iter().enumerate() {
                let ord = order_cols[c].values()[a].cmp(&order_cols[c].values()[b]);
                let ord = match dir {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            rows[a].cmp(&rows[b]) // stable tie-break on original position
        });
        kept.extend(members.into_iter().take(filter.keep).map(|i| rows[i]));
    }
    kept.sort_unstable(); // restore original row order
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use cocoon_table::DataType;

    fn table() -> Table {
        let rows: Vec<Vec<String>> = vec![
            vec!["1".into(), "eng".into(), "2020-01-01".into()],
            vec!["1".into(), "English".into(), "2021-01-01".into()],
            vec!["2".into(), "fre".into(), "2020-06-01".into()],
            vec!["2".into(), "fre".into(), "2020-06-01".into()],
        ];
        Table::from_text_rows(&["id", "lang", "updated"], &rows).unwrap()
    }

    #[test]
    fn select_star_is_identity() {
        let out = execute(&Select::star("t"), &table()).unwrap();
        assert_eq!(out, table());
    }

    #[test]
    fn select_star_shares_column_storage() {
        let input = table();
        let out = execute(&Select::star("t"), &input).unwrap();
        for c in 0..input.width() {
            assert!(
                Arc::ptr_eq(input.shared_column(c).unwrap(), out.shared_column(c).unwrap()),
                "column {c} was deep-copied"
            );
        }
    }

    #[test]
    fn bare_column_projection_shares_storage() {
        let input = table();
        let s = Select {
            distinct: false,
            projections: vec![
                Projection::Expr { expr: Expr::col("lang"), alias: None },
                Projection::aliased(Expr::col("id"), "renamed"),
            ],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &input).unwrap();
        assert!(Arc::ptr_eq(input.shared_column(1).unwrap(), out.shared_column(0).unwrap()));
        assert!(Arc::ptr_eq(input.shared_column(0).unwrap(), out.shared_column(1).unwrap()));
        assert_eq!(out.schema().names(), vec!["lang", "renamed"]);
    }

    #[test]
    fn where_filters_rows() {
        let mut s = Select::star("t");
        s.where_clause = Some(Expr::eq(Expr::col("id"), Expr::lit("2")));
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let mut s = Select::star("t");
        s.distinct = true;
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 3);
    }

    #[test]
    fn projection_with_value_map() {
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        let s = Select {
            distinct: false,
            projections: vec![
                Projection::Expr { expr: Expr::col("id"), alias: None },
                Projection::aliased(map, "lang"),
            ],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.schema().names(), vec!["id", "lang"]);
        assert_eq!(out.cell(1, 1).unwrap(), &Value::from("eng"));
    }

    #[test]
    fn qualify_keeps_latest_per_id() {
        let s = Select {
            distinct: false,
            projections: vec![Projection::Star],
            from: "t".into(),
            where_clause: None,
            qualify: Some(RowNumberFilter {
                partition_by: vec![Expr::col("id")],
                order_by: vec![(Expr::col("updated"), SortOrder::Desc)],
                keep: 1,
            }),
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 2);
        // id=1 keeps the 2021 row.
        assert_eq!(out.cell(0, 1).unwrap(), &Value::from("English"));
        // id=2 keeps the first of the tied rows.
        assert_eq!(out.cell(1, 2).unwrap(), &Value::from("2020-06-01"));
    }

    #[test]
    fn projected_types_follow_casts() {
        let s = Select {
            distinct: false,
            projections: vec![Projection::aliased(
                Expr::try_cast(Expr::col("id"), DataType::Int),
                "id",
            )],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.schema().field(0).unwrap().data_type(), DataType::Int);
        assert_eq!(out.cell(0, 0).unwrap(), &Value::Int(1));
    }

    #[test]
    fn duplicate_output_names_disambiguated() {
        let s = Select {
            distinct: false,
            projections: vec![
                Projection::Expr { expr: Expr::col("id"), alias: None },
                Projection::Expr { expr: Expr::col("id"), alias: None },
            ],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.schema().names(), vec!["id", "id_1"]);
    }

    #[test]
    fn where_null_predicate_drops_row() {
        let mut s = Select::star("t");
        // NULL = 'x' is NULL → row dropped.
        s.where_clause = Some(Expr::eq(Expr::null(), Expr::lit("x")));
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 0);
    }

    #[test]
    fn rowwise_oracle_agrees_on_the_unit_cases() {
        let input = table();
        let mut wheres = Select::star("t");
        wheres.where_clause = Some(Expr::eq(Expr::col("id"), Expr::lit("2")));
        let mut dist = Select::star("t");
        dist.distinct = true;
        let qualify = Select {
            distinct: false,
            projections: vec![Projection::Star],
            from: "t".into(),
            where_clause: None,
            qualify: Some(RowNumberFilter {
                partition_by: vec![Expr::col("id")],
                order_by: vec![(Expr::col("updated"), SortOrder::Desc)],
                keep: 1,
            }),
            comment: None,
        };
        for s in [Select::star("t"), wheres, dist, qualify] {
            assert_eq!(execute(&s, &input).unwrap(), execute_rowwise(&s, &input).unwrap());
        }
    }
}
