//! Executing `SELECT` statements against in-memory tables.

use crate::ast::{Projection, RowNumberFilter, Select, SortOrder};
use crate::error::Result;
use crate::eval::{eval, infer_expr_type, RowContext};
use crate::render::render_expr;
use cocoon_table::{Column, Field, Schema, Table, Value};
use std::collections::HashMap;

/// Executes `select` against `input`, producing a new table.
///
/// Evaluation order matches SQL semantics for the supported subset:
/// `WHERE` → window `QUALIFY` filter → projection → `DISTINCT`.
pub fn execute(select: &Select, input: &Table) -> Result<Table> {
    // WHERE: keep rows whose predicate is exactly TRUE.
    let mut keep: Vec<usize> = Vec::with_capacity(input.height());
    for row in 0..input.height() {
        let passes = match &select.where_clause {
            Some(pred) => {
                let ctx = RowContext::new(input, row);
                matches!(eval(pred, &ctx)?, Value::Bool(true))
            }
            None => true,
        };
        if passes {
            keep.push(row);
        }
    }

    // QUALIFY: row_number() over (partition by … order by …) <= keep.
    if let Some(filter) = &select.qualify {
        keep = apply_row_number_filter(filter, input, &keep)?;
    }

    // Projection.
    let (schema, mut columns) = projected_schema(select, input)?;
    for &row in &keep {
        let ctx = RowContext::new(input, row);
        let mut out_col = 0usize;
        for projection in &select.projections {
            match projection {
                Projection::Star => {
                    for c in 0..input.width() {
                        columns[out_col].push(input.cell(row, c)?.clone());
                        out_col += 1;
                    }
                }
                Projection::Expr { expr, .. } => {
                    columns[out_col].push(eval(expr, &ctx)?);
                    out_col += 1;
                }
            }
        }
    }
    let mut table = Table::new(schema, columns)?;

    if select.distinct {
        table.distinct();
    }
    Ok(table)
}

/// Builds the output schema and empty columns for the projection list.
fn projected_schema(select: &Select, input: &Table) -> Result<(Schema, Vec<Column>)> {
    let mut fields: Vec<Field> = Vec::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    let mut push_field = |name: String, ty| {
        // Disambiguate duplicate output names deterministically.
        let n = used.entry(name.clone()).or_insert(0);
        let final_name = if *n == 0 { name.clone() } else { format!("{name}_{n}") };
        *n += 1;
        fields.push(Field::new(final_name, ty));
    };
    for projection in &select.projections {
        match projection {
            Projection::Star => {
                for field in input.schema().fields() {
                    push_field(field.name().to_string(), field.data_type());
                }
            }
            Projection::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr));
                push_field(name, infer_expr_type(expr, input.schema()));
            }
        }
    }
    let columns = (0..fields.len()).map(|_| Column::default()).collect();
    Ok((Schema::new(fields)?, columns))
}

/// Output name for an unaliased projection: bare columns keep their name;
/// anything else uses its SQL rendering.
fn default_name(expr: &crate::ast::Expr) -> String {
    match expr {
        crate::ast::Expr::Column(name) => name.clone(),
        other => render_expr(other),
    }
}

/// Applies the ROW_NUMBER window filter over the surviving rows.
fn apply_row_number_filter(
    filter: &RowNumberFilter,
    input: &Table,
    rows: &[usize],
) -> Result<Vec<usize>> {
    // Group rows by partition key.
    let mut partitions: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut partition_order: Vec<Vec<Value>> = Vec::new();
    for &row in rows {
        let ctx = RowContext::new(input, row);
        let mut key = Vec::with_capacity(filter.partition_by.len());
        for expr in &filter.partition_by {
            key.push(eval(expr, &ctx)?);
        }
        let entry = partitions.entry(key.clone()).or_default();
        if entry.is_empty() {
            partition_order.push(key);
        }
        entry.push(row);
    }

    // Order each partition and keep the first `keep` rows.
    let mut kept: Vec<usize> = Vec::new();
    for key in partition_order {
        let mut members = partitions.remove(&key).expect("partition recorded");
        // Pre-compute sort keys to avoid re-evaluating during comparison.
        let mut sort_keys: Vec<(usize, Vec<Value>)> = Vec::with_capacity(members.len());
        for &row in &members {
            let ctx = RowContext::new(input, row);
            let mut k = Vec::with_capacity(filter.order_by.len());
            for (expr, _) in &filter.order_by {
                k.push(eval(expr, &ctx)?);
            }
            sort_keys.push((row, k));
        }
        sort_keys.sort_by(|(ra, ka), (rb, kb)| {
            for (i, (_, dir)) in filter.order_by.iter().enumerate() {
                let ord = ka[i].cmp(&kb[i]);
                let ord = match dir {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            ra.cmp(rb) // stable tie-break on original position
        });
        members = sort_keys.into_iter().map(|(row, _)| row).collect();
        kept.extend(members.into_iter().take(filter.keep));
    }
    kept.sort_unstable(); // restore original row order
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use cocoon_table::DataType;

    fn table() -> Table {
        let rows: Vec<Vec<String>> = vec![
            vec!["1".into(), "eng".into(), "2020-01-01".into()],
            vec!["1".into(), "English".into(), "2021-01-01".into()],
            vec!["2".into(), "fre".into(), "2020-06-01".into()],
            vec!["2".into(), "fre".into(), "2020-06-01".into()],
        ];
        Table::from_text_rows(&["id", "lang", "updated"], &rows).unwrap()
    }

    #[test]
    fn select_star_is_identity() {
        let out = execute(&Select::star("t"), &table()).unwrap();
        assert_eq!(out, table());
    }

    #[test]
    fn where_filters_rows() {
        let mut s = Select::star("t");
        s.where_clause = Some(Expr::eq(Expr::col("id"), Expr::lit("2")));
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let mut s = Select::star("t");
        s.distinct = true;
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 3);
    }

    #[test]
    fn projection_with_value_map() {
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        let s = Select {
            distinct: false,
            projections: vec![
                Projection::Expr { expr: Expr::col("id"), alias: None },
                Projection::aliased(map, "lang"),
            ],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.schema().names(), vec!["id", "lang"]);
        assert_eq!(out.cell(1, 1).unwrap(), &Value::from("eng"));
    }

    #[test]
    fn qualify_keeps_latest_per_id() {
        let s = Select {
            distinct: false,
            projections: vec![Projection::Star],
            from: "t".into(),
            where_clause: None,
            qualify: Some(RowNumberFilter {
                partition_by: vec![Expr::col("id")],
                order_by: vec![(Expr::col("updated"), SortOrder::Desc)],
                keep: 1,
            }),
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 2);
        // id=1 keeps the 2021 row.
        assert_eq!(out.cell(0, 1).unwrap(), &Value::from("English"));
        // id=2 keeps the first of the tied rows.
        assert_eq!(out.cell(1, 2).unwrap(), &Value::from("2020-06-01"));
    }

    #[test]
    fn projected_types_follow_casts() {
        let s = Select {
            distinct: false,
            projections: vec![Projection::aliased(
                Expr::try_cast(Expr::col("id"), DataType::Int),
                "id",
            )],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.schema().field(0).unwrap().data_type(), DataType::Int);
        assert_eq!(out.cell(0, 0).unwrap(), &Value::Int(1));
    }

    #[test]
    fn duplicate_output_names_disambiguated() {
        let s = Select {
            distinct: false,
            projections: vec![
                Projection::Expr { expr: Expr::col("id"), alias: None },
                Projection::Expr { expr: Expr::col("id"), alias: None },
            ],
            from: "t".into(),
            where_clause: None,
            qualify: None,
            comment: None,
        };
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.schema().names(), vec!["id", "id_1"]);
    }

    #[test]
    fn where_null_predicate_drops_row() {
        let mut s = Select::star("t");
        // NULL = 'x' is NULL → row dropped.
        s.where_clause = Some(Expr::eq(Expr::null(), Expr::lit("x")));
        let out = execute(&s, &table()).unwrap();
        assert_eq!(out.height(), 0);
    }
}
