//! SQL substrate errors.

use cocoon_table::TableError;
use std::fmt;

/// Errors from SQL evaluation, execution, or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Expression referenced an unknown column.
    UnknownColumn(String),
    /// Unknown scalar function.
    UnknownFunction(String),
    /// Function called with the wrong number of arguments.
    Arity {
        /// Function name.
        function: String,
        /// Expected argument count, as prose (e.g. "1" or "2 or 3").
        expected: String,
        /// Argument count actually supplied.
        actual: usize,
    },
    /// A value had the wrong type for an operation.
    Type {
        /// Operation that rejected the value.
        context: String,
        /// Rendering of the offending value.
        value: String,
    },
    /// An invalid regular expression reached the engine.
    Pattern(String),
    /// Division by zero.
    DivisionByZero,
    /// SQL text failed to parse.
    Parse {
        /// Char offset of the failure in the SQL text.
        position: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// Underlying table error.
    Table(TableError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            SqlError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            SqlError::Arity { function, expected, actual } => {
                write!(f, "{function} expects {expected} arguments, got {actual}")
            }
            SqlError::Type { context, value } => {
                write!(f, "type error in {context}: {value}")
            }
            SqlError::Pattern(msg) => write!(f, "invalid pattern: {msg}"),
            SqlError::DivisionByZero => write!(f, "division by zero"),
            SqlError::Parse { position, message } => {
                write!(f, "sql parse error at {position}: {message}")
            }
            SqlError::Table(err) => write!(f, "table error: {err}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<TableError> for SqlError {
    fn from(err: TableError) -> Self {
        SqlError::Table(err)
    }
}

/// Result alias for the SQL substrate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SqlError::UnknownColumn("x".into()).to_string().contains('x'));
        assert!(SqlError::DivisionByZero.to_string().contains("zero"));
        let e = SqlError::Arity { function: "TRIM".into(), expected: "1".into(), actual: 3 };
        assert!(e.to_string().contains("TRIM"));
    }

    #[test]
    fn table_error_converts() {
        let e: SqlError = TableError::UnknownColumn("c".into()).into();
        assert!(matches!(e, SqlError::Table(_)));
    }
}
