//! Scalar SQL functions.
//!
//! The registry covers the functions Cocoon's cleaning SQL uses: string
//! trimming/casing (string outliers), regex match/replace (pattern
//! outliers), `COALESCE`/`NULLIF` (DMV handling) and light arithmetic.

use crate::error::{Result, SqlError};
use cocoon_pattern::Regex;
use cocoon_table::Value;
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// Per-thread cache of compiled patterns; cleaning SQL evaluates the
    /// same regex once per row, so compilation must be amortised.
    static REGEX_CACHE: RefCell<HashMap<String, Regex>> = RefCell::new(HashMap::new());
}

fn compiled(pattern: &str) -> Result<Regex> {
    REGEX_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(re) = cache.get(pattern) {
            return Ok(re.clone());
        }
        let re = Regex::new(pattern).map_err(|e| SqlError::Pattern(e.to_string()))?;
        cache.insert(pattern.to_string(), re.clone());
        Ok(re)
    })
}

fn text_arg<'a>(function: &str, args: &'a [Value], idx: usize) -> Result<Option<&'a str>> {
    match args.get(idx) {
        Some(Value::Null) => Ok(None),
        Some(Value::Text(s)) => Ok(Some(s)),
        Some(other) => Err(SqlError::Type {
            context: format!("{function} argument {idx}"),
            value: other.render(),
        }),
        None => Err(SqlError::Arity {
            function: function.to_string(),
            expected: format!(">{idx}"),
            actual: args.len(),
        }),
    }
}

fn require_arity(function: &str, args: &[Value], expected: usize) -> Result<()> {
    if args.len() != expected {
        return Err(SqlError::Arity {
            function: function.to_string(),
            expected: expected.to_string(),
            actual: args.len(),
        });
    }
    Ok(())
}

/// Invokes scalar function `name` (canonical uppercase) on `args`.
pub fn call(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "TRIM" | "UPPER" | "LOWER" => {
            require_arity(name, args, 1)?;
            let Some(s) = text_arg(name, args, 0)? else { return Ok(Value::Null) };
            Ok(Value::Text(match name {
                "TRIM" => s.trim().to_string(),
                "UPPER" => s.to_uppercase(),
                _ => s.to_lowercase(),
            }))
        }
        "LENGTH" => {
            require_arity(name, args, 1)?;
            let Some(s) = text_arg(name, args, 0)? else { return Ok(Value::Null) };
            Ok(Value::Int(s.chars().count() as i64))
        }
        "CONCAT" => {
            let mut out = String::new();
            for v in args {
                if !v.is_null() {
                    out.push_str(&v.render());
                }
            }
            Ok(Value::Text(out))
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(SqlError::Arity {
                    function: name.to_string(),
                    expected: "2 or 3".to_string(),
                    actual: args.len(),
                });
            }
            let Some(s) = text_arg(name, args, 0)? else { return Ok(Value::Null) };
            let start = match &args[1] {
                Value::Int(i) => *i,
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(SqlError::Type {
                        context: "SUBSTR start".into(),
                        value: other.render(),
                    })
                }
            };
            let chars: Vec<char> = s.chars().collect();
            // SQL SUBSTR is 1-based.
            let begin = (start.max(1) - 1) as usize;
            let len = match args.get(2) {
                Some(Value::Int(l)) => (*l).max(0) as usize,
                Some(Value::Null) => return Ok(Value::Null),
                Some(other) => {
                    return Err(SqlError::Type {
                        context: "SUBSTR length".into(),
                        value: other.render(),
                    })
                }
                None => chars.len().saturating_sub(begin),
            };
            let end = (begin + len).min(chars.len());
            let begin = begin.min(chars.len());
            Ok(Value::Text(chars[begin..end].iter().collect()))
        }
        "COALESCE" => {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "NULLIF" => {
            require_arity(name, args, 2)?;
            if !args[0].is_null() && !args[1].is_null() && args[0] == args[1] {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "ABS" => {
            require_arity(name, args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(SqlError::Type { context: "ABS".into(), value: other.render() }),
            }
        }
        "ROUND" => {
            require_arity(name, args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Float(f.round())),
                other => Err(SqlError::Type { context: "ROUND".into(), value: other.render() }),
            }
        }
        "REGEXP_MATCHES" => {
            // DuckDB semantics: true if the pattern matches anywhere.
            require_arity(name, args, 2)?;
            let Some(s) = text_arg(name, args, 0)? else { return Ok(Value::Null) };
            let Some(p) = text_arg(name, args, 1)? else { return Ok(Value::Null) };
            Ok(Value::Bool(compiled(p)?.is_match(s)))
        }
        "REGEXP_FULL_MATCH" => {
            require_arity(name, args, 2)?;
            let Some(s) = text_arg(name, args, 0)? else { return Ok(Value::Null) };
            let Some(p) = text_arg(name, args, 1)? else { return Ok(Value::Null) };
            Ok(Value::Bool(compiled(p)?.full_match(s)))
        }
        "REGEXP_REPLACE" => {
            require_arity(name, args, 3)?;
            let Some(s) = text_arg(name, args, 0)? else { return Ok(Value::Null) };
            let Some(p) = text_arg(name, args, 1)? else { return Ok(Value::Null) };
            let Some(r) = text_arg(name, args, 2)? else { return Ok(Value::Null) };
            Ok(Value::Text(compiled(p)?.replace_all(s, r)))
        }
        other => Err(SqlError::UnknownFunction(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Value {
        Value::Text(s.into())
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("TRIM", &[t("  x ")]).unwrap(), t("x"));
        assert_eq!(call("UPPER", &[t("eng")]).unwrap(), t("ENG"));
        assert_eq!(call("LOWER", &[t("ENG")]).unwrap(), t("eng"));
        assert_eq!(call("LENGTH", &[t("héllo")]).unwrap(), Value::Int(5));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(call("TRIM", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(call("REGEXP_REPLACE", &[Value::Null, t("a"), t("b")]).unwrap(), Value::Null);
    }

    #[test]
    fn concat_skips_nulls() {
        assert_eq!(call("CONCAT", &[t("a"), Value::Null, t("b")]).unwrap(), t("ab"));
    }

    #[test]
    fn substr_one_based() {
        assert_eq!(call("SUBSTR", &[t("hello"), Value::Int(2), Value::Int(3)]).unwrap(), t("ell"));
        assert_eq!(call("SUBSTR", &[t("hello"), Value::Int(2)]).unwrap(), t("ello"));
        assert_eq!(call("SUBSTR", &[t("hi"), Value::Int(9), Value::Int(2)]).unwrap(), t(""));
    }

    #[test]
    fn coalesce_and_nullif() {
        assert_eq!(call("COALESCE", &[Value::Null, t("x")]).unwrap(), t("x"));
        assert_eq!(call("COALESCE", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(call("NULLIF", &[t("N/A"), t("N/A")]).unwrap(), Value::Null);
        assert_eq!(call("NULLIF", &[t("ok"), t("N/A")]).unwrap(), t("ok"));
    }

    #[test]
    fn regex_functions() {
        assert_eq!(call("REGEXP_MATCHES", &[t("ab12"), t(r"\d+")]).unwrap(), Value::Bool(true));
        assert_eq!(call("REGEXP_FULL_MATCH", &[t("ab12"), t(r"\d+")]).unwrap(), Value::Bool(false));
        assert_eq!(
            call(
                "REGEXP_REPLACE",
                &[t("01/02/2003"), t(r"(\d{2})/(\d{2})/(\d{4})"), t("$3-$1-$2")]
            )
            .unwrap(),
            t("2003-01-02")
        );
    }

    #[test]
    fn bad_pattern_is_error() {
        assert!(matches!(call("REGEXP_MATCHES", &[t("x"), t("(")]), Err(SqlError::Pattern(_))));
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(call("ABS", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(call("ROUND", &[Value::Float(2.6)]).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn unknown_function_and_arity() {
        assert!(matches!(call("NOPE", &[]), Err(SqlError::UnknownFunction(_))));
        assert!(matches!(call("TRIM", &[t("a"), t("b")]), Err(SqlError::Arity { .. })));
        assert!(matches!(call("ABS", &[t("x")]), Err(SqlError::Type { .. })));
    }
}
