//! SQL tokenizer for the emitted subset.

use crate::error::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted word, uppercased (keywords and plain identifiers).
    Word(String),
    /// `"quoted"` identifier, unescaped.
    QuotedIdent(String),
    /// `'string'` literal, unescaped.
    String(String),
    /// Numeric literal (lexed as text; parser decides int vs float).
    Number(String),
    /// Punctuation or operator.
    Symbol(Symbol),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// A token with its source position (char offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// Char offset of the token's first character in the input.
    pub position: usize,
}

/// Tokenizes SQL text. Line comments (`-- …`) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // line comment
        if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let position = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            tokens.push(Spanned { token: Token::Word(word.to_ascii_uppercase()), position });
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !seen_dot)) {
                if chars[i] == '.' {
                    seen_dot = true;
                }
                i += 1;
            }
            tokens
                .push(Spanned { token: Token::Number(chars[start..i].iter().collect()), position });
            continue;
        }
        match c {
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&other) => {
                            s.push(other);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::Parse {
                                position,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Spanned { token: Token::String(s), position });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') if chars.get(i + 1) == Some(&'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&other) => {
                            s.push(other);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::Parse {
                                position,
                                message: "unterminated quoted identifier".into(),
                            })
                        }
                    }
                }
                tokens.push(Spanned { token: Token::QuotedIdent(s), position });
            }
            '(' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::LParen), position });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::RParen), position });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::Comma), position });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::Eq), position });
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Spanned { token: Token::Symbol(Symbol::Ne), position });
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned { token: Token::Symbol(Symbol::Le), position });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Symbol(Symbol::Lt), position });
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned { token: Token::Symbol(Symbol::Ge), position });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Symbol(Symbol::Gt), position });
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned { token: Token::Symbol(Symbol::Ne), position });
                    i += 2;
                } else {
                    return Err(SqlError::Parse { position, message: "unexpected '!'".into() });
                }
            }
            '+' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::Plus), position });
                i += 1;
            }
            '-' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::Minus), position });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::Star), position });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned { token: Token::Symbol(Symbol::Slash), position });
                i += 1;
            }
            other => {
                return Err(SqlError::Parse {
                    position,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn words_uppercased() {
        assert_eq!(
            toks("select Foo"),
            vec![Token::Word("SELECT".into()), Token::Word("FOO".into())]
        );
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(toks("'o''brien'"), vec![Token::String("o'brien".into())]);
    }

    #[test]
    fn quoted_idents_preserve_case() {
        assert_eq!(toks("\"MixedCase\""), vec![Token::QuotedIdent("MixedCase".into())]);
        assert_eq!(toks("\"has\"\"q\""), vec![Token::QuotedIdent("has\"q".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("12 3.5 .5"),
            vec![
                Token::Number("12".into()),
                Token::Number("3.5".into()),
                Token::Number(".5".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<> <= >= != ="),
            vec![
                Token::Symbol(Symbol::Ne),
                Token::Symbol(Symbol::Le),
                Token::Symbol(Symbol::Ge),
                Token::Symbol(Symbol::Ne),
                Token::Symbol(Symbol::Eq),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("-- hi there\nSELECT -- trailing\n1"),
            vec![Token::Word("SELECT".into()), Token::Number("1".into()),]
        );
    }

    #[test]
    fn errors_positioned() {
        match tokenize("  'open") {
            Err(SqlError::Parse { position, .. }) => assert_eq!(position, 2),
            other => panic!("{other:?}"),
        }
        assert!(tokenize("@").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("!x").is_err());
    }
}
