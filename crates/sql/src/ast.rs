//! SQL abstract syntax: the expression and statement forms Cocoon emits.
//!
//! Each cleaning step in the paper compiles to one of a small family of SQL
//! shapes: `CASE WHEN` value maps (string outliers, DMVs, FD repairs,
//! numeric thresholds), `CAST` (column types), `REGEXP_REPLACE` (pattern
//! outliers), `SELECT DISTINCT` (duplication) and a `ROW_NUMBER()` window
//! filter (column uniqueness). This module models exactly that family.

use cocoon_table::{DataType, Value};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL` postfix test.
    IsNull,
    /// `IS NOT NULL` postfix test.
    IsNotNull,
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// SQL token for this operator.
    pub fn sql(&self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Unary operator application (prefix `NOT`/`-`, postfix null tests).
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    ///
    /// With an operand this is the "simple" form (`CASE col WHEN 'a' THEN
    /// 'b' …`), otherwise the "searched" form (`CASE WHEN cond THEN …`).
    Case {
        /// Simple-form scrutinee; `None` selects the searched form.
        operand: Option<Box<Expr>>,
        /// `WHEN … THEN …` pairs, tried in order.
        arms: Vec<(Expr, Expr)>,
        /// `ELSE` result; omitting it yields NULL when no arm matches.
        otherwise: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`; `lenient` renders as `TRY_CAST` and yields NULL
    /// instead of erroring on bad input.
    Cast {
        /// Value being converted.
        expr: Box<Expr>,
        /// Target type.
        ty: DataType,
        /// `true` renders as `TRY_CAST`: bad input becomes NULL, not an error.
        lenient: bool,
    },
    /// Scalar function call (uppercase canonical name).
    Func {
        /// Canonical (uppercase) function name.
        name: String,
        /// Positional arguments.
        args: Vec<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Value being tested for membership.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `true` spells `NOT IN`.
        negated: bool,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal value.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// The NULL literal.
    pub fn null() -> Expr {
        Expr::Literal(Value::Null)
    }

    /// `left op right`.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// `left = right`.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, left, right)
    }

    /// `left AND right`.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::And, left, right)
    }

    /// `left OR right`.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, left, right)
    }

    /// `expr IS NULL`.
    pub fn is_null(expr: Expr) -> Expr {
        Expr::Unary { op: UnaryOp::IsNull, expr: Box::new(expr) }
    }

    /// Function call; the name is canonicalised to uppercase.
    pub fn func(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Func { name: name.to_ascii_uppercase(), args }
    }

    /// `CAST(expr AS ty)` — errors on unconvertible input.
    pub fn cast(expr: Expr, ty: DataType) -> Expr {
        Expr::Cast { expr: Box::new(expr), ty, lenient: false }
    }

    /// `TRY_CAST(expr AS ty)` — NULL on unconvertible input.
    pub fn try_cast(expr: Expr, ty: DataType) -> Expr {
        Expr::Cast { expr: Box::new(expr), ty, lenient: true }
    }

    /// Builds the workhorse of Cocoon cleaning: a simple-CASE value map
    /// `CASE col WHEN old THEN new … ELSE col END`.
    pub fn value_map(column: &str, mapping: &[(Value, Value)]) -> Expr {
        Expr::Case {
            operand: Some(Box::new(Expr::col(column))),
            arms: mapping
                .iter()
                .map(|(old, new)| (Expr::Literal(old.clone()), Expr::Literal(new.clone())))
                .collect(),
            otherwise: Some(Box::new(Expr::col(column))),
        }
    }

    /// Columns referenced anywhere in this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(name) = e {
                out.push(name.as_str());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Unary { expr, .. } => expr.walk(visit),
            Expr::Binary { left, right, .. } => {
                left.walk(visit);
                right.walk(visit);
            }
            Expr::Case { operand, arms, otherwise } => {
                if let Some(op) = operand {
                    op.walk(visit);
                }
                for (when, then) in arms {
                    when.walk(visit);
                    then.walk(visit);
                }
                if let Some(o) = otherwise {
                    o.walk(visit);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(visit),
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(visit);
                for item in list {
                    item.walk(visit);
                }
            }
        }
    }
}

/// Sort direction for window ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (`ASC`).
    Asc,
    /// Descending (`DESC`).
    Desc,
}

/// `ROW_NUMBER() OVER (PARTITION BY … ORDER BY …) <= keep` filter — the
/// dedup window of §2.1.8.
#[derive(Debug, Clone, PartialEq)]
pub struct RowNumberFilter {
    /// Duplicate-group key: rows agreeing on these expressions compete.
    pub partition_by: Vec<Expr>,
    /// Ranking within each partition — the first `keep` rows survive.
    pub order_by: Vec<(Expr, SortOrder)>,
    /// Rows kept per partition (1 = keep best row only).
    pub keep: usize,
}

/// One output column of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*` — every input column unchanged.
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name; defaults to the rendered expression.
        alias: Option<String>,
    },
}

impl Projection {
    /// `expr AS alias`.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Projection {
        Projection::Expr { expr, alias: Some(alias.into()) }
    }
}

/// A single-table `SELECT` statement (the only statement Cocoon emits).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT` — the paper's table-level dedup step.
    pub distinct: bool,
    /// Output columns, in order.
    pub projections: Vec<Projection>,
    /// Source table name (documentation only; the executor binds a table).
    pub from: String,
    /// Row filter (`WHERE`).
    pub where_clause: Option<Expr>,
    /// Post-window filter (`QUALIFY`), used for keyed dedup.
    pub qualify: Option<RowNumberFilter>,
    /// Human-readable reasoning rendered as a leading SQL comment
    /// (the paper's Figure 5 "well-commented SQL queries").
    pub comment: Option<String>,
}

impl Select {
    /// `SELECT * FROM name`.
    pub fn star(from: impl Into<String>) -> Select {
        Select {
            distinct: false,
            projections: vec![Projection::Star],
            from: from.into(),
            where_clause: None,
            qualify: None,
            comment: None,
        }
    }

    /// Attaches the human-readable reasoning comment.
    pub fn with_comment(mut self, comment: impl Into<String>) -> Select {
        self.comment = Some(comment.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_map_shape() {
        let map = Expr::value_map("lang", &[(Value::from("English"), Value::from("eng"))]);
        match &map {
            Expr::Case { operand: Some(op), arms, otherwise: Some(other) } => {
                assert_eq!(**op, Expr::col("lang"));
                assert_eq!(arms.len(), 1);
                assert_eq!(**other, Expr::col("lang"));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn referenced_columns_collects() {
        let e = Expr::and(Expr::eq(Expr::col("a"), Expr::lit(1i64)), Expr::is_null(Expr::col("b")));
        let mut cols = e.referenced_columns();
        cols.sort_unstable();
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn builder_helpers() {
        let e = Expr::func("trim", vec![Expr::col("x")]);
        match &e {
            Expr::Func { name, args } => {
                assert_eq!(name, "TRIM");
                assert_eq!(args.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(Expr::null(), Expr::Literal(Value::Null));
    }

    #[test]
    fn select_star_defaults() {
        let s = Select::star("t").with_comment("why");
        assert!(!s.distinct);
        assert_eq!(s.projections, vec![Projection::Star]);
        assert_eq!(s.comment.as_deref(), Some("why"));
    }

    #[test]
    fn operator_spellings() {
        assert_eq!(BinaryOp::Ne.sql(), "<>");
        assert_eq!(BinaryOp::And.sql(), "AND");
    }
}
