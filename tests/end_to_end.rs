//! Cross-crate integration: datasets → pipeline → evaluation.
//!
//! These tests guard the paper's headline result — Cocoon's F1 on the
//! benchmarks — end to end through every crate in the workspace.

use cocoon_core::{Cleaner, IssueKind};
use cocoon_eval::{evaluate, Equivalence};
use cocoon_llm::SimLlm;

#[test]
fn hospital_f1_meets_paper_band() {
    let d = cocoon_datasets::hospital::generate();
    let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let e = evaluate(&d.dirty, &run.table, &d.truth, Equivalence::Lenient);
    // Paper: 0.87 / 0.93 / 0.90. Guard a band, not exact decimals.
    assert!(e.prf.precision >= 0.80, "precision {}", e.prf.precision);
    assert!(e.prf.recall >= 0.85, "recall {}", e.prf.recall);
    assert!(e.prf.f1 >= 0.85, "f1 {}", e.prf.f1);
}

#[test]
fn hospital_strict_f1_meets_appendix_band() {
    let d = cocoon_datasets::hospital::generate();
    let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let e = evaluate(&d.dirty, &run.table, &d.truth, Equivalence::Strict);
    // Paper Table 3: 0.99 / 0.99 / 0.99.
    assert!(e.prf.f1 >= 0.90, "strict f1 {}", e.prf.f1);
}

#[test]
fn beers_f1_meets_paper_band() {
    let d = cocoon_datasets::beers::generate();
    let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let e = evaluate(&d.dirty, &run.table, &d.truth, Equivalence::Lenient);
    // Paper: 0.99 / 0.96 / 0.97.
    assert!(e.prf.f1 >= 0.90, "f1 {}", e.prf.f1);
}

#[test]
fn rayyan_f1_meets_paper_band() {
    let d = cocoon_datasets::rayyan::generate();
    let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let e = evaluate(&d.dirty, &run.table, &d.truth, Equivalence::Lenient);
    // Paper: 0.88 / 0.84 / 0.86.
    assert!(e.prf.f1 >= 0.80, "f1 {}", e.prf.f1);
}

#[test]
fn flights_reproduces_the_precision_recall_asymmetry() {
    let d = cocoon_datasets::flights::generate();
    let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let e = evaluate(&d.dirty, &run.table, &d.truth, Equivalence::Lenient);
    // Paper: 0.91 precision, 0.42 recall — the ambiguous-FD analysis.
    assert!(e.prf.precision >= 0.85, "precision {}", e.prf.precision);
    assert!(
        (0.30..=0.60).contains(&e.prf.recall),
        "recall {} should be capped by the rejected actual-time FD",
        e.prf.recall
    );
    // The rejection must be recorded, with the paper's reasoning.
    assert!(run
        .notes
        .iter()
        .any(|n| n.contains("actual_arrival_time") && n.contains("not semantically meaningful")));
}

#[test]
fn cleaning_is_deterministic() {
    let d = cocoon_datasets::beers::generate();
    let a = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let b = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    assert_eq!(a.table, b.table);
    assert_eq!(a.ops.len(), b.ops.len());
    assert_eq!(a.notes, b.notes);
}

#[test]
fn pipeline_never_drops_benchmark_rows() {
    for name in ["Hospital", "Flights", "Beers", "Rayyan"] {
        let d = cocoon_datasets::by_name(name).expect("dataset");
        let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
        assert_eq!(run.table.height(), d.dirty.height(), "{name} lost rows");
        assert_eq!(run.table.width(), d.dirty.width(), "{name} lost columns");
    }
}

#[test]
fn issue_mix_matches_dataset_character() {
    // Beers must exercise string outliers (oz/ounce), type casts, FDs, DMVs.
    let d = cocoon_datasets::beers::generate();
    let run = Cleaner::new(SimLlm::new()).clean(&d.dirty).expect("pipeline");
    let kinds: Vec<IssueKind> = run.ops.iter().map(|o| o.issue).collect();
    assert!(kinds.contains(&IssueKind::StringOutliers), "{kinds:?}");
    assert!(kinds.contains(&IssueKind::ColumnType), "{kinds:?}");
    assert!(kinds.contains(&IssueKind::DisguisedMissing), "{kinds:?}");
    assert!(kinds.contains(&IssueKind::FunctionalDependency), "{kinds:?}");
}
