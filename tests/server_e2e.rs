//! Loopback end-to-end tests of `cocoon-server`: N concurrent clients, each
//! response byte-identical to a direct `Cleaner` run; shared-dispatcher
//! coalescing and rate limiting visible in `/v1/metrics`; the async job
//! lifecycle; and HTTP error statuses over a real socket.

use cocoon_core::Cleaner;
use cocoon_llm::{DispatcherConfig, Json, RateLimit, SimLlm};
use cocoon_server::{Server, ServerConfig, ServerHandle};
use cocoon_table::csv;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The multi-issue fixture shared with the pipeline tests: string
/// outliers, pattern outliers, DMVs, casts and numeric outliers at once.
fn messy_csv() -> String {
    let mut text = String::from("record_id,lang,admission,EmergencyService,rating\n");
    for i in 0..20 {
        text.push_str(&format!("r{i},eng,01/02/2003,yes,7.5\n"));
    }
    text.push_str("r20,English,2003-04-05,no,8.0\n");
    text.push_str("r21,eng,01/02/2003,N/A,99.0\n");
    text
}

fn clean_body(csv_text: &str) -> String {
    format!("{{\"csv\": {}}}", cocoon_llm::json::escape(csv_text))
}

/// Minimal HTTP client: one request per connection (`Connection: close`, so
/// EOF frames the response). Returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: cocoon\r\nConnection: close\r\n");
    match body {
        Some(body) => request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len())),
        None => request.push_str("\r\n"),
    }
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = http(addr, "GET", path, None);
    (status, cocoon_llm::json::parse(&body).unwrap_or_else(|e| panic!("{path}: {e}: {body}")))
}

/// Runs `test` against a freshly bound server, stopping it afterwards.
fn with_server(config: ServerConfig, test: impl FnOnce(&ServerHandle)) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle().expect("handle");
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve());
        test(&handle);
        handle.stop();
        serving.join().expect("serve thread").expect("serve result");
    });
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        job_workers: 1,
        ..ServerConfig::default()
    }
}

#[test]
fn concurrent_cleans_are_byte_identical_to_direct_runs() {
    // A wide batch window plus a tight token bucket: concurrent identical
    // prompts must single-flight, and dispatches must visibly wait.
    let mut config = test_config();
    config.dispatcher = DispatcherConfig {
        batch_window: Duration::from_millis(25),
        rate_limit: Some(RateLimit::new(200.0, 1.0)),
        ..DispatcherConfig::default()
    };
    let csv_text = messy_csv();
    let direct = Cleaner::new(SimLlm::new())
        .clean(&csv::read_str(&csv_text).expect("fixture parses"))
        .expect("direct clean");
    let expected_csv = csv::write_str(&direct.table);
    let expected_script = direct.sql_script();
    let body = clean_body(&csv_text);

    with_server(config, |handle| {
        let addr = handle.addr();
        const CLIENTS: usize = 8;
        let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| scope.spawn(|| http(addr, "POST", "/v1/clean", Some(&body))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        let first = &responses[0].1;
        for (status, response_body) in &responses {
            assert_eq!(*status, 200, "{response_body}");
            assert_eq!(response_body, first, "all served responses are byte-identical");
            let json = cocoon_llm::json::parse(response_body).expect("response json");
            assert_eq!(
                json.get("cleaned_csv").and_then(Json::as_str),
                Some(expected_csv.as_str()),
                "served clean table == direct library run"
            );
            assert_eq!(
                json.get("sql_script").and_then(Json::as_str),
                Some(expected_script.as_str()),
                "served SQL artifact == direct library run"
            );
            assert_eq!(
                json.get("total_changes"),
                Some(&Json::Number(direct.total_changes() as f64))
            );
        }

        let (status, metrics) = get_json(addr, "/v1/metrics");
        assert_eq!(status, 200);
        let requests = metrics.get("requests").expect("requests section");
        assert_eq!(requests.get("clean").and_then(Json::as_f64), Some(CLIENTS as f64));
        let dispatcher =
            metrics.get("llm").and_then(|l| l.get("dispatcher")).expect("dispatcher section");
        let stat = |name: &str| {
            dispatcher.get(name).and_then(Json::as_f64).unwrap_or_else(|| panic!("{name}"))
        };
        assert!(
            stat("coalesced") >= 1.0,
            "concurrent identical prompts must single-flight: {dispatcher}"
        );
        assert!(stat("batches") >= 1.0, "{dispatcher}");
        assert!(
            stat("rate_limit_waits") >= 1.0,
            "the token bucket must have enforced waits: {dispatcher}"
        );
        let llm = metrics.get("llm").unwrap();
        assert!(
            llm.get("cache_hits").and_then(Json::as_f64).unwrap() >= 1.0,
            "8 identical cleans share the process-wide cache: {llm}"
        );
    });
}

#[test]
fn async_jobs_match_the_synchronous_endpoint() {
    let config = test_config();
    let csv_text = messy_csv();
    let body = clean_body(&csv_text);
    with_server(config, |handle| {
        let addr = handle.addr();
        let (status, sync_body) = http(addr, "POST", "/v1/clean", Some(&body));
        assert_eq!(status, 200);

        let (status, submit_body) = http(addr, "POST", "/v1/jobs", Some(&body));
        assert_eq!(status, 202, "{submit_body}");
        let submitted = cocoon_llm::json::parse(&submit_body).expect("submit json");
        assert_eq!(submitted.get("status").and_then(Json::as_str), Some("queued"));
        let poll_path =
            submitted.get("poll").and_then(Json::as_str).expect("poll path").to_string();

        let deadline = Instant::now() + Duration::from_secs(30);
        let finished = loop {
            let (status, view) = get_json(addr, &poll_path);
            assert_eq!(status, 200);
            match view.get("status").and_then(Json::as_str) {
                Some("done") => break view,
                Some("failed") => panic!("job failed: {view}"),
                _ => {
                    assert!(Instant::now() < deadline, "job did not finish: {view}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let progress = finished.get("progress").expect("progress");
        assert_eq!(progress.get("finished").and_then(Json::as_bool), Some(true));
        assert_eq!(progress.get("total_stages").and_then(Json::as_f64), Some(8.0));
        assert_eq!(progress.get("completed_stages").and_then(Json::as_f64), Some(8.0));
        // The job result is exactly the synchronous response.
        let sync_json = cocoon_llm::json::parse(&sync_body).expect("sync json");
        assert_eq!(finished.get("result"), Some(&sync_json));

        let (_, metrics) = get_json(addr, "/v1/metrics");
        let jobs = metrics.get("jobs").expect("jobs section");
        assert_eq!(jobs.get("done").and_then(Json::as_f64), Some(1.0));
        assert_eq!(jobs.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    });
}

#[test]
fn datasets_endpoint_lists_the_benchmark_catalog() {
    with_server(test_config(), |handle| {
        let (status, body) = get_json(handle.addr(), "/v1/datasets");
        assert_eq!(status, 200);
        let datasets = body.get("datasets").and_then(Json::as_array).expect("array");
        let names: Vec<&str> = datasets.iter().filter_map(|d| d.get("name")?.as_str()).collect();
        assert_eq!(names, ["Hospital", "Flights", "Beers", "Rayyan", "Movies"]);
    });
}

#[test]
fn protocol_and_routing_errors_over_the_wire() {
    let mut config = test_config();
    config.max_body = 256;
    with_server(config, |handle| {
        let addr = handle.addr();
        assert_eq!(http(addr, "GET", "/nope", None).0, 404);
        assert_eq!(http(addr, "GET", "/v1/clean", None).0, 405);
        assert_eq!(http(addr, "POST", "/v1/clean", Some("{not json")).0, 400);
        assert_eq!(http(addr, "POST", "/v1/clean", Some("{}")).0, 400);
        assert_eq!(http(addr, "GET", "/v1/jobs/12345", None).0, 404);
        // A body over the configured cap is refused with 413.
        let big = clean_body(&messy_csv());
        assert!(big.len() > 256);
        let (status, body) = http(addr, "POST", "/v1/clean", Some(&big));
        assert_eq!(status, 413, "{body}");
        // The error responses and oversized bodies all surface in metrics.
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let requests = metrics.get("requests").expect("requests");
        assert!(requests.get("responses_4xx").and_then(Json::as_f64).unwrap() >= 5.0);
    });
}

#[test]
fn stop_returns_even_with_an_idle_keep_alive_connection_open() {
    let server = Server::bind(test_config()).expect("bind");
    let handle = server.handle().expect("handle");
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve());
        // Complete one exchange, then leave the connection open and idle:
        // its worker is blocked reading, not accepting, when stop() runs.
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: cocoon\r\n\r\n").expect("send");
        let mut first = [0u8; 15];
        stream.read_exact(&mut first).expect("response starts");
        assert_eq!(&first, b"HTTP/1.1 200 OK");
        handle.stop();
        serving.join().expect("serve thread").expect("serve result");
        drop(stream);
    });
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    with_server(test_config(), |handle| {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        for i in 0..3 {
            stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: cocoon\r\n\r\n").expect("send");
            // Read the framed response off the persistent connection.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).expect("head byte");
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).expect("utf-8 head");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "request {i}: {head}");
            assert!(head.contains("Connection: keep-alive"), "request {i}");
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length")
                .trim()
                .parse()
                .expect("length");
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).expect("body");
            cocoon_llm::json::parse(std::str::from_utf8(&body).unwrap()).expect("body json");
        }
    });
}
