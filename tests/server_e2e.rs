//! Loopback end-to-end tests of `cocoon-server`: N concurrent clients, each
//! response byte-identical to a direct `Cleaner` run; shared-dispatcher
//! coalescing and rate limiting visible in `/v1/metrics`; the async job
//! lifecycle; and HTTP error statuses over a real socket.

use cocoon_core::Cleaner;
use cocoon_llm::{DispatcherConfig, Json, RateLimit, SimLlm};
use cocoon_server::{Server, ServerConfig, ServerHandle};
use cocoon_table::csv;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The multi-issue fixture shared with the pipeline tests: string
/// outliers, pattern outliers, DMVs, casts and numeric outliers at once.
fn messy_csv() -> String {
    let mut text = String::from("record_id,lang,admission,EmergencyService,rating\n");
    for i in 0..20 {
        text.push_str(&format!("r{i},eng,01/02/2003,yes,7.5\n"));
    }
    text.push_str("r20,English,2003-04-05,no,8.0\n");
    text.push_str("r21,eng,01/02/2003,N/A,99.0\n");
    text
}

fn clean_body(csv_text: &str) -> String {
    format!("{{\"csv\": {}}}", cocoon_llm::json::escape(csv_text))
}

/// Minimal HTTP client: one request per connection (`Connection: close`, so
/// EOF frames the response). Returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    http_with_headers(addr, method, path, &[], body)
}

/// Like [`http`], with extra request headers (name, value).
fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: cocoon\r\nConnection: close\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    match body {
        Some(body) => request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len())),
        None => request.push_str("\r\n"),
    }
    stream.write_all(request.as_bytes()).expect("send request");
    read_response(&mut stream)
}

/// Reads a `Connection: close` response to EOF. Returns (status, body).
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = http(addr, "GET", path, None);
    (status, cocoon_llm::json::parse(&body).unwrap_or_else(|e| panic!("{path}: {e}: {body}")))
}

/// Reads one `Content-Length`-framed response off a keep-alive connection.
/// Returns (status, body).
fn read_framed_response(stream: &mut TcpStream) -> (u16, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("head byte");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("content-length")
        .trim()
        .parse()
        .expect("length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Runs `test` against a freshly bound server, stopping it afterwards —
/// including when `test` panics: without the catch, the scope would wait
/// forever on the still-serving worker threads and a failing assertion
/// would hang the suite instead of failing it.
fn with_server(config: ServerConfig, test: impl FnOnce(&ServerHandle)) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle().expect("handle");
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(&handle)));
        handle.stop();
        serving.join().expect("serve thread").expect("serve result");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        job_workers: 1,
        ..ServerConfig::default()
    }
}

#[test]
fn concurrent_cleans_are_byte_identical_to_direct_runs() {
    // A wide batch window plus a tight token bucket: concurrent identical
    // prompts must single-flight, and dispatches must visibly wait.
    let mut config = test_config();
    config.dispatcher = DispatcherConfig {
        batch_window: Duration::from_millis(25),
        rate_limit: Some(RateLimit::new(200.0, 1.0)),
        ..DispatcherConfig::default()
    };
    let csv_text = messy_csv();
    let direct = Cleaner::new(SimLlm::new())
        .clean(&csv::read_str(&csv_text).expect("fixture parses"))
        .expect("direct clean");
    let expected_csv = csv::write_str(&direct.table);
    let expected_script = direct.sql_script();
    let body = clean_body(&csv_text);

    with_server(config, |handle| {
        let addr = handle.addr();
        const CLIENTS: usize = 8;
        let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| scope.spawn(|| http(addr, "POST", "/v1/clean", Some(&body))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        let first = &responses[0].1;
        for (status, response_body) in &responses {
            assert_eq!(*status, 200, "{response_body}");
            assert_eq!(response_body, first, "all served responses are byte-identical");
            let json = cocoon_llm::json::parse(response_body).expect("response json");
            assert_eq!(
                json.get("cleaned_csv").and_then(Json::as_str),
                Some(expected_csv.as_str()),
                "served clean table == direct library run"
            );
            assert_eq!(
                json.get("sql_script").and_then(Json::as_str),
                Some(expected_script.as_str()),
                "served SQL artifact == direct library run"
            );
            assert_eq!(
                json.get("total_changes"),
                Some(&Json::Number(direct.total_changes() as f64))
            );
        }

        let (status, metrics) = get_json(addr, "/v1/metrics");
        assert_eq!(status, 200);
        let requests = metrics.get("requests").expect("requests section");
        assert_eq!(requests.get("clean").and_then(Json::as_f64), Some(CLIENTS as f64));
        let dispatcher =
            metrics.get("llm").and_then(|l| l.get("dispatcher")).expect("dispatcher section");
        let stat = |name: &str| {
            dispatcher.get(name).and_then(Json::as_f64).unwrap_or_else(|| panic!("{name}"))
        };
        assert!(
            stat("coalesced") >= 1.0,
            "concurrent identical prompts must single-flight: {dispatcher}"
        );
        assert!(stat("batches") >= 1.0, "{dispatcher}");
        assert!(
            stat("rate_limit_waits") >= 1.0,
            "the token bucket must have enforced waits: {dispatcher}"
        );
        let llm = metrics.get("llm").unwrap();
        // With cross-batch single-flight the 8 concurrent cleans can run in
        // perfect lockstep — every lookup misses and coalesces instead of
        // hitting — so cache sharing is proven by a follow-up clean, which
        // must be served entirely from the shared cache.
        let misses_after_wave = llm.get("cache_misses").and_then(Json::as_f64).unwrap();
        let (status, _) = http(addr, "POST", "/v1/clean", Some(&body));
        assert_eq!(status, 200);
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let llm = metrics.get("llm").unwrap();
        assert_eq!(
            llm.get("cache_misses").and_then(Json::as_f64),
            Some(misses_after_wave),
            "a ninth identical clean replays from the shared cache: {llm}"
        );
        assert!(
            llm.get("cache_hits").and_then(Json::as_f64).unwrap() >= 1.0,
            "the follow-up clean hit the process-wide cache: {llm}"
        );
    });
}

#[test]
fn async_jobs_match_the_synchronous_endpoint() {
    let config = test_config();
    let csv_text = messy_csv();
    let body = clean_body(&csv_text);
    with_server(config, |handle| {
        let addr = handle.addr();
        let (status, sync_body) = http(addr, "POST", "/v1/clean", Some(&body));
        assert_eq!(status, 200);

        let (status, submit_body) = http(addr, "POST", "/v1/jobs", Some(&body));
        assert_eq!(status, 202, "{submit_body}");
        let submitted = cocoon_llm::json::parse(&submit_body).expect("submit json");
        assert_eq!(submitted.get("status").and_then(Json::as_str), Some("queued"));
        let poll_path =
            submitted.get("poll").and_then(Json::as_str).expect("poll path").to_string();

        let deadline = Instant::now() + Duration::from_secs(30);
        let finished = loop {
            let (status, view) = get_json(addr, &poll_path);
            assert_eq!(status, 200);
            match view.get("status").and_then(Json::as_str) {
                Some("done") => break view,
                Some("failed") => panic!("job failed: {view}"),
                _ => {
                    assert!(Instant::now() < deadline, "job did not finish: {view}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let progress = finished.get("progress").expect("progress");
        assert_eq!(progress.get("finished").and_then(Json::as_bool), Some(true));
        assert_eq!(progress.get("total_stages").and_then(Json::as_f64), Some(8.0));
        assert_eq!(progress.get("completed_stages").and_then(Json::as_f64), Some(8.0));
        // The job result is exactly the synchronous response.
        let sync_json = cocoon_llm::json::parse(&sync_body).expect("sync json");
        assert_eq!(finished.get("result"), Some(&sync_json));

        let (_, metrics) = get_json(addr, "/v1/metrics");
        let jobs = metrics.get("jobs").expect("jobs section");
        assert_eq!(jobs.get("done").and_then(Json::as_f64), Some(1.0));
        assert_eq!(jobs.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    });
}

#[test]
fn datasets_endpoint_lists_the_benchmark_catalog() {
    with_server(test_config(), |handle| {
        let (status, body) = get_json(handle.addr(), "/v1/datasets");
        assert_eq!(status, 200);
        let datasets = body.get("datasets").and_then(Json::as_array).expect("array");
        let names: Vec<&str> = datasets.iter().filter_map(|d| d.get("name")?.as_str()).collect();
        assert_eq!(names, ["Hospital", "Flights", "Beers", "Rayyan", "Movies"]);
    });
}

#[test]
fn protocol_and_routing_errors_over_the_wire() {
    let mut config = test_config();
    config.max_body = 256;
    with_server(config, |handle| {
        let addr = handle.addr();
        assert_eq!(http(addr, "GET", "/nope", None).0, 404);
        assert_eq!(http(addr, "GET", "/v1/clean", None).0, 405);
        assert_eq!(http(addr, "POST", "/v1/clean", Some("{not json")).0, 400);
        assert_eq!(http(addr, "POST", "/v1/clean", Some("{}")).0, 400);
        assert_eq!(http(addr, "GET", "/v1/jobs/12345", None).0, 404);
        // A body over the configured cap is refused with 413.
        let big = clean_body(&messy_csv());
        assert!(big.len() > 256);
        let (status, body) = http(addr, "POST", "/v1/clean", Some(&big));
        assert_eq!(status, 413, "{body}");
        // The error responses and oversized bodies all surface in metrics.
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let requests = metrics.get("requests").expect("requests");
        assert!(requests.get("responses_4xx").and_then(Json::as_f64).unwrap() >= 5.0);
    });
}

#[test]
fn csv_ingest_and_response_are_byte_equivalent_to_the_json_path() {
    // The acceptance bar: on Movies (the paper's largest benchmark), a
    // `text/csv` in → `text/csv` out clean must be byte-identical to the
    // `cleaned_csv` field the JSON path reports for the same table.
    let movies_csv = csv::write_str(&cocoon_datasets::movies::generate().dirty);
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        let (status, json_body) = http(addr, "POST", "/v1/clean", Some(&clean_body(&movies_csv)));
        assert_eq!(status, 200, "{json_body}");
        let json = cocoon_llm::json::parse(&json_body).expect("json response");
        let expected_csv = json.get("cleaned_csv").and_then(Json::as_str).expect("cleaned_csv");

        let (status, csv_out) = http_with_headers(
            addr,
            "POST",
            "/v1/clean",
            &[("Content-Type", "text/csv"), ("Accept", "text/csv")],
            Some(&movies_csv),
        );
        assert_eq!(status, 200, "{csv_out}");
        assert_eq!(csv_out, expected_csv, "CSV-in/CSV-out == the JSON path's cleaned_csv");

        // CSV in, JSON out (no Accept header): the full report, identical
        // to the JSON-ingest report.
        let (status, mixed) = http_with_headers(
            addr,
            "POST",
            "/v1/clean",
            &[("Content-Type", "text/csv")],
            Some(&movies_csv),
        );
        assert_eq!(status, 200);
        assert_eq!(mixed, json_body, "ingest format does not leak into the JSON report");

        // JSON in, CSV out.
        let (status, csv_from_json) = http_with_headers(
            addr,
            "POST",
            "/v1/clean",
            &[("Accept", "text/csv")],
            Some(&clean_body(&movies_csv)),
        );
        assert_eq!(status, 200);
        assert_eq!(csv_from_json, expected_csv);
    });
}

#[test]
fn streamed_csv_profiling_is_invisible_in_the_output() {
    // Streamed `text/csv` ingest profiles the table chunk-by-chunk as body
    // bytes arrive and hands the merged profile to the pipeline. With a
    // tiny chunk size (hundreds of partial merges on Movies) the cleaned
    // output must stay byte-identical to the materialised JSON path *and*
    // to a direct in-process `Cleaner` run — the merge-equivalence
    // guarantee, held to over the wire.
    let movies = cocoon_datasets::movies::generate().dirty;
    let movies_csv = csv::write_str(&movies);
    let direct = Cleaner::new(SimLlm::new()).clean(&movies).expect("direct clean");
    let expected_csv = csv::write_str(&direct.table);
    let config = ServerConfig { profile_chunk_rows: 3, ..test_config() };
    with_server(config, |handle| {
        let addr = handle.addr();
        let (status, streamed) = http_with_headers(
            addr,
            "POST",
            "/v1/clean",
            &[("Content-Type", "text/csv"), ("Accept", "text/csv")],
            Some(&movies_csv),
        );
        assert_eq!(status, 200, "{streamed}");
        assert_eq!(streamed, expected_csv, "streamed-profiled clean == direct Cleaner run");

        let (status, json_body) = http(addr, "POST", "/v1/clean", Some(&clean_body(&movies_csv)));
        assert_eq!(status, 200, "{json_body}");
        let json = cocoon_llm::json::parse(&json_body).expect("json response");
        let from_json = json.get("cleaned_csv").and_then(Json::as_str).expect("cleaned_csv");
        assert_eq!(streamed, from_json, "profiled and unprofiled ingest paths agree");
    });
}

#[test]
fn chunked_csv_upload_streams_through() {
    // A chunked transfer (no Content-Length anywhere) must parse
    // incrementally and clean identically — the streaming-friendly shape.
    let csv_text = messy_csv();
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        let (_, json_body) = http(addr, "POST", "/v1/clean", Some(&clean_body(&csv_text)));
        let expected = cocoon_llm::json::parse(&json_body)
            .expect("json response")
            .get("cleaned_csv")
            .and_then(Json::as_str)
            .expect("cleaned_csv")
            .to_string();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"POST /v1/clean HTTP/1.1\r\nHost: cocoon\r\nConnection: close\r\n\
                  Content-Type: text/csv\r\nAccept: text/csv\r\n\
                  Transfer-Encoding: chunked\r\n\r\n",
            )
            .expect("send head");
        // Dribble the CSV in small chunks with pauses, like a real
        // streaming producer.
        for piece in csv_text.as_bytes().chunks(64) {
            let chunk = format!("{:x}\r\n", piece.len());
            stream.write_all(chunk.as_bytes()).expect("chunk size");
            stream.write_all(piece).expect("chunk data");
            stream.write_all(b"\r\n").expect("chunk end");
            std::thread::sleep(Duration::from_millis(1));
        }
        stream.write_all(b"0\r\n\r\n").expect("final chunk");
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected);
    });
}

#[test]
fn malformed_csv_ingest_is_a_client_error() {
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        for (bad, why) in [
            ("a\n\"oops\n", "unterminated quote"),
            ("a\nab\"c\n", "quote mid-field"),
            ("a,b\n", "no rows"),
        ] {
            let (status, body) = http_with_headers(
                addr,
                "POST",
                "/v1/clean",
                &[("Content-Type", "text/csv")],
                Some(bad),
            );
            assert_eq!(status, 400, "{why}: {body}");
        }
    });
}

#[test]
fn stalled_client_costs_no_worker_and_overload_is_refused() {
    // One worker, a one-deep request queue, a short slow-loris bound, and
    // a throttled model. In the readiness core a silent client is parked
    // parser state inside the event loop, never a pinned worker: with the
    // staller sitting mid-request-line, the lone worker must still serve
    // live traffic immediately. Overload bites at the *work queue*: with
    // the worker busy on a slow clean and one complete request already
    // queued, the next complete request gets an immediate 503. The staller
    // itself is reclaimed by the idle sweep.
    let mut config = test_config();
    config.workers = 1;
    config.request_backlog = 1;
    config.idle_timeout = Duration::from_millis(600);
    // Burst 1 makes every prompt after the first wait ~500ms, so the
    // worker is demonstrably busy for the whole overload sequence.
    config.dispatcher.rate_limit = Some(RateLimit::new(2.0, 1.0));
    with_server(config, |handle| {
        let addr = handle.addr();
        let state = handle.state();
        // The staller: half a request line, then silence.
        let mut staller = TcpStream::connect(addr).expect("staller connects");
        staller.write_all(b"GET /v1/metr").expect("partial request");
        std::thread::sleep(Duration::from_millis(100));

        // The lone worker is free despite the staller: a live request is
        // served promptly, not after the idle reclaim.
        let start = Instant::now();
        let (status, _) = http(addr, "GET", "/v1/metrics", None);
        assert_eq!(status, 200);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "a stalled connection must not occupy the worker: {:?}",
            start.elapsed()
        );

        // Occupy the worker with a slow clean, and the queue with another.
        // Distinct tables so neither is a cache replay.
        let busy = std::thread::spawn(move || {
            http(addr, "POST", "/v1/clean", Some(&clean_body(&messy_csv())))
        });
        let spin_until = |what: &str, done: &dyn Fn() -> bool| {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !done() {
                assert!(Instant::now() < deadline, "timed out waiting: {what}");
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        let requests_before = state.metrics.snapshot().requests_total;
        spin_until("worker picks up the slow clean", &|| {
            state.metrics.snapshot().requests_total > requests_before
        });
        let queued_csv = messy_csv().replace("7.5", "6.5");
        let queued = std::thread::spawn(move || {
            http(addr, "POST", "/v1/clean", Some(&clean_body(&queued_csv)))
        });
        let queue_depth = || {
            let body = state.metrics_body();
            let json = cocoon_llm::json::parse(&body).expect("metrics body");
            json.get("accept").unwrap().get("queue_depth").unwrap().as_f64().unwrap()
        };
        spin_until("second clean queues", &|| queue_depth() >= 1.0);

        // The overflow client: worker busy + queue full → fast 503.
        let start = Instant::now();
        let (status, body) = http(addr, "GET", "/v1/metrics", None);
        assert_eq!(status, 503, "{body}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "the 503 must be immediate, not a queue-wedge timeout: {:?}",
            start.elapsed()
        );

        // Both cleans complete once the worker gets to them.
        assert_eq!(busy.join().expect("busy client").0, 200);
        assert_eq!(queued.join().expect("queued client").0, 200);

        // The staller is reclaimed by the idle sweep: its connection just
        // closes (EOF), with no worker ever having touched it.
        staller.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let mut sink = Vec::new();
        staller.read_to_end(&mut sink).expect("staller sees EOF, not a hang");

        // Metrics saw the whole story.
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let accept = metrics.get("accept").expect("accept section");
        assert!(accept.get("accepted").and_then(Json::as_f64).unwrap() >= 4.0);
        assert!(accept.get("rejected_busy").and_then(Json::as_f64).unwrap() >= 1.0);
        assert_eq!(accept.get("queue_capacity").and_then(Json::as_f64), Some(1.0));
        let connections = metrics.get("connections").expect("connections section");
        assert!(connections.get("idle_reaped").and_then(Json::as_f64).unwrap() >= 1.0);
    });
}

#[test]
fn cache_stays_bounded_under_a_concurrent_hammer() {
    // 8 clients hammer distinct tables through a tiny LRU: the shared
    // cache must never exceed its capacity, and the churn must show up in
    // the eviction counter.
    let mut config = test_config();
    config.cache_capacity = Some(8);
    with_server(config, |handle| {
        let addr = handle.addr();
        std::thread::scope(|scope| {
            for client in 0..8 {
                scope.spawn(move || {
                    for i in 0..3 {
                        // Distinct values per client and iteration ⇒
                        // distinct prompts ⇒ constant cache churn.
                        let csv_text = format!(
                            "id,code\n1,alpha{client}{i}\n2,alpha{client}{i}\n3,beta{client}{i}\n"
                        );
                        let (status, body) = http_with_headers(
                            addr,
                            "POST",
                            "/v1/clean",
                            &[("Content-Type", "text/csv")],
                            Some(&csv_text),
                        );
                        assert_eq!(status, 200, "{body}");
                    }
                });
            }
        });
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let llm = metrics.get("llm").expect("llm section");
        let cached = llm.get("cached_responses").and_then(Json::as_f64).unwrap();
        assert!(cached <= 8.0, "cache grew past its capacity: {cached}");
        assert_eq!(llm.get("cache_capacity").and_then(Json::as_f64), Some(8.0));
        assert!(
            llm.get("cache_evictions").and_then(Json::as_f64).unwrap() > 0.0,
            "24 distinct cleans through 8 slots must evict: {llm}"
        );
    });
}

#[test]
fn job_ttl_and_delete_lifecycle_over_the_wire() {
    // The TTL must comfortably outlast a poll round-trip (so the client
    // reliably observes "done" before expiry) while keeping the test quick.
    let mut config = test_config();
    config.job_ttl = Some(Duration::from_millis(500));
    let body = clean_body(&messy_csv());
    with_server(config, |handle| {
        let addr = handle.addr();
        let poll_done = |poll_path: &str| {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let (status, view) = get_json(addr, poll_path);
                assert_eq!(status, 200);
                if view.get("status").and_then(Json::as_str) == Some("done") {
                    return;
                }
                assert!(Instant::now() < deadline, "job did not finish: {view}");
                std::thread::sleep(Duration::from_millis(5));
            }
        };
        let submit = |body: &str| {
            let (status, submitted) = http(addr, "POST", "/v1/jobs", Some(body));
            assert_eq!(status, 202, "{submitted}");
            let json = cocoon_llm::json::parse(&submitted).expect("submit json");
            json.get("poll").and_then(Json::as_str).expect("poll path").to_string()
        };

        // TTL: a finished job expires and then polls as 404.
        let poll_path = submit(&body);
        poll_done(&poll_path);
        std::thread::sleep(Duration::from_millis(1100));
        let (status, _) = http(addr, "GET", &poll_path, None);
        assert_eq!(status, 404, "expired job polls as unknown");

        // DELETE: a finished job is freed immediately; repeats are 404.
        let poll_path = submit(&body);
        poll_done(&poll_path);
        let (status, _) = http(addr, "DELETE", &poll_path, None);
        assert_eq!(status, 204);
        assert_eq!(http(addr, "GET", &poll_path, None).0, 404);
        assert_eq!(http(addr, "DELETE", &poll_path, None).0, 404);

        let (_, metrics) = get_json(addr, "/v1/metrics");
        let jobs = metrics.get("jobs").expect("jobs section");
        assert!(jobs.get("expired").and_then(Json::as_f64).unwrap() >= 1.0, "{jobs}");
        assert!(jobs.get("deleted").and_then(Json::as_f64).unwrap() >= 1.0, "{jobs}");
    });
}

#[test]
fn stop_returns_even_with_an_idle_keep_alive_connection_open() {
    let server = Server::bind(test_config()).expect("bind");
    let handle = server.handle().expect("handle");
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve());
        // Complete one exchange, then leave the connection open and idle:
        // its worker is blocked reading, not accepting, when stop() runs.
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: cocoon\r\n\r\n").expect("send");
        let mut first = [0u8; 15];
        stream.read_exact(&mut first).expect("response starts");
        assert_eq!(&first, b"HTTP/1.1 200 OK");
        handle.stop();
        serving.join().expect("serve thread").expect("serve result");
        drop(stream);
    });
}

#[test]
fn job_results_negotiate_csv_like_the_sync_path() {
    // `Accept: text/csv` on a finished job's poll returns just the cleaned
    // table — byte-identical to what the synchronous endpoint negotiates
    // for the same input.
    let body = clean_body(&messy_csv());
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        let (status, sync_csv) =
            http_with_headers(addr, "POST", "/v1/clean", &[("Accept", "text/csv")], Some(&body));
        assert_eq!(status, 200, "{sync_csv}");

        let (status, submitted) = http(addr, "POST", "/v1/jobs", Some(&body));
        assert_eq!(status, 202, "{submitted}");
        let poll_path = cocoon_llm::json::parse(&submitted)
            .expect("submit json")
            .get("poll")
            .and_then(Json::as_str)
            .expect("poll path")
            .to_string();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, view) = get_json(addr, &poll_path);
            assert_eq!(status, 200);
            if view.get("status").and_then(Json::as_str) == Some("done") {
                break;
            }
            assert!(Instant::now() < deadline, "job did not finish: {view}");
            std::thread::sleep(Duration::from_millis(10));
        }

        let (status, csv_out) =
            http_with_headers(addr, "GET", &poll_path, &[("Accept", "text/csv")], None);
        assert_eq!(status, 200, "{csv_out}");
        assert_eq!(csv_out, sync_csv, "job CSV == sync CSV for the same table");
        // Without the Accept header the poll still reports the JSON view.
        let (_, view) = get_json(addr, &poll_path);
        assert_eq!(view.get("status").and_then(Json::as_str), Some("done"));
    });
}

#[test]
fn pipelined_requests_are_served_in_order() {
    // Two requests in one write. The second arrives in the same read as
    // the first — after responding, the event loop must re-parse its own
    // buffered leftovers rather than wait for readiness that will never
    // fire (the kernel has no unread bytes to report).
    with_server(test_config(), |handle| {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(
                b"GET /v1/metrics HTTP/1.1\r\nHost: cocoon\r\n\r\n\
                  GET /v1/datasets HTTP/1.1\r\nHost: cocoon\r\n\r\n",
            )
            .expect("pipelined pair");
        let (status, first) = read_framed_response(&mut stream);
        assert_eq!(status, 200, "{first}");
        let first = cocoon_llm::json::parse(&first).expect("metrics json");
        assert!(first.get("requests").is_some());
        let (status, second) = read_framed_response(&mut stream);
        assert_eq!(status, 200, "{second}");
        let second = cocoon_llm::json::parse(&second).expect("datasets json");
        assert!(second.get("datasets").is_some());
    });
}

#[test]
fn mid_body_stall_parks_in_the_event_loop() {
    // A client that stalls halfway through a streaming CSV body is parked
    // parser state in the event loop — the lone worker serves live traffic
    // meanwhile — and on resume the parse picks up exactly where the bytes
    // stopped.
    let mut config = test_config();
    config.workers = 1;
    with_server(config, |handle| {
        let addr = handle.addr();
        let csv_text = messy_csv();
        let split_at = csv_text.len() / 2;
        let mut staller = TcpStream::connect(addr).expect("connect");
        staller
            .write_all(
                format!(
                    "POST /v1/clean HTTP/1.1\r\nHost: cocoon\r\nConnection: close\r\n\
                     Content-Type: text/csv\r\nAccept: text/csv\r\n\
                     Content-Length: {}\r\n\r\n",
                    csv_text.len()
                )
                .as_bytes(),
            )
            .expect("head");
        staller.write_all(&csv_text.as_bytes()[..split_at]).expect("half the body");
        std::thread::sleep(Duration::from_millis(100));

        // The worker is free while the body stalls.
        let start = Instant::now();
        let (status, _) = http(addr, "GET", "/v1/metrics", None);
        assert_eq!(status, 200);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "a mid-body stall must not occupy the worker: {:?}",
            start.elapsed()
        );

        // Resume: the clean completes as if the body had arrived in one piece.
        staller.write_all(&csv_text.as_bytes()[split_at..]).expect("rest of the body");
        let (status, body) = read_response(&mut staller);
        assert_eq!(status, 200, "{body}");
        assert!(body.starts_with("record_id,"), "cleaned CSV came back: {body:.40}");
    });
}

#[test]
fn large_response_completes_via_write_readiness() {
    // A response bigger than the socket buffers against a slow reader: the
    // event loop writes what fits, parks the rest in the connection's
    // outbound buffer, and finishes on write-readiness — no worker blocked
    // on the send, which `partial_writes` makes observable. Loopback
    // absorbs ~4MB against a stalled reader (send buffer auto-tuning), so
    // the response is sized ~3× that: wide cells with few distinct values
    // keep the clean cheap, and unique ids keep the deduplication stage
    // from collapsing the table.
    let wide: Vec<String> = ["alpha", "beta", "gamma"].iter().map(|word| word.repeat(60)).collect();
    let mut rows = String::from("id,code\n");
    for i in 0..20_000 {
        rows.push_str(&format!("{i},{}\n", wide[i % 3]));
    }
    let body = format!("{{\"csv\": {}, \"include_rows\": true}}", cocoon_llm::json::escape(&rows));
    let mut config = test_config();
    config.max_body = 64 * 1024 * 1024;
    with_server(config, |handle| {
        let addr = handle.addr();
        let state = handle.state();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "POST /v1/clean HTTP/1.1\r\nHost: cocoon\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("send request");
        // Do not read yet: the server must hit WouldBlock mid-response.
        let deadline = Instant::now() + Duration::from_secs(120);
        while state.metrics.snapshot().partial_writes == 0 {
            assert!(Instant::now() < deadline, "no partial write observed");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Now drain: the buffered remainder arrives via write-readiness.
        let (status, response) = read_framed_response(&mut stream);
        assert_eq!(status, 200);
        let json = cocoon_llm::json::parse(&response).expect("response json");
        assert_eq!(
            json.get("cleaned_rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(20_000),
            "the full body arrived intact"
        );
        assert!(state.metrics.snapshot().partial_writes >= 1);
    });
}

/// `Threads:` from `/proc/self/status` — the whole-process thread count.
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("proc status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads line")
        .trim()
        .parse()
        .expect("thread count")
}

/// How many keep-alive connections the herd opens.
const HERD_SIZE: usize = 10_050;

/// Not a test of its own — the client half of
/// [`ten_thousand_idle_connections_served_alongside_live_traffic`], run in
/// a *child process* so each side of the 10k connection pairs gets its own
/// file-descriptor budget (this container hard-caps RLIMIT_NOFILE at
/// 20000, and 10k pairs need ~20k fds). No-ops unless `HERD_ADDR` is set.
#[test]
fn herd_client_helper() {
    let Ok(addr) = std::env::var("HERD_ADDR") else { return };
    let addr: SocketAddr = addr.parse().expect("HERD_ADDR parses");
    let _ = poller::raise_nofile_limit((HERD_SIZE + 1000) as u64);
    let mut herd = Vec::with_capacity(HERD_SIZE);
    for i in 0..HERD_SIZE {
        let stream = (0..1000)
            .find_map(|_| match TcpStream::connect(addr) {
                Ok(stream) => Some(stream),
                // Transient backlog pressure; the event loop is draining
                // accepts as fast as readiness reports them.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    None
                }
            })
            .unwrap_or_else(|| panic!("connection {i} would not open"));
        herd.push(stream);
        // Every 1000th connection talks, proving the server serves live
        // keep-alive traffic while the idle herd grows around it.
        if i % 1000 == 999 {
            let stream = herd.last_mut().unwrap();
            stream
                .write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: cocoon\r\n\r\n")
                .expect("live request");
            let (status, body) = read_framed_response(stream);
            assert_eq!(status, 200, "live traffic at {} conns: {body}", i + 1);
        }
    }
    println!("HERD_READY");
    // Hold the herd open until the parent closes our stdin.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
}

#[test]
fn ten_thousand_idle_connections_served_alongside_live_traffic() {
    use std::io::BufRead;

    // The headline number: 10k+ concurrent keep-alive connections on one
    // event thread, costing no threads at all — while live requests keep
    // being served among them. The client herd runs as a child process
    // (see [`herd_client_helper`]); the server and its metrics live here.
    let _ = poller::raise_nofile_limit((HERD_SIZE + 1000) as u64);
    let mut config = test_config();
    config.max_conns = 12_000;
    config.workers = 4;
    // Idle is legitimate here; don't let the sweep reap the herd.
    config.idle_timeout = Duration::from_secs(300);
    with_server(config, |handle| {
        let addr = handle.addr();
        let state = handle.state();
        // Baseline only after the server is demonstrably up (a served
        // request proves the event loop and a worker) and the spawn burst
        // has settled — measuring mid-startup would count the server's own
        // threads as if the herd had caused them.
        let (status, _) = get_json(addr, "/v1/metrics");
        assert_eq!(status, 200);
        let mut threads_before = process_threads();
        loop {
            std::thread::sleep(Duration::from_millis(50));
            let now = process_threads();
            if now == threads_before {
                break;
            }
            threads_before = now;
        }
        let child = std::process::Command::new(std::env::current_exe().expect("test binary"))
            .args(["herd_client_helper", "--exact", "--nocapture", "--test-threads", "1"])
            .env("HERD_ADDR", addr.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn herd client");
        // The child must not outlive a failing assertion below — an
        // orphaned herd would wedge the server stop this scope waits on.
        struct Reap(Option<std::process::Child>);
        impl Drop for Reap {
            fn drop(&mut self) {
                if let Some(mut child) = self.0.take() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        let mut guard = Reap(Some(child));
        let child = guard.0.as_mut().unwrap();

        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let ready = lines.by_ref().map_while(Result::ok).any(|line| line.contains("HERD_READY"));
        assert!(ready, "herd client died before opening {HERD_SIZE} connections");

        // The server has registered (essentially) the whole herd.
        let deadline = Instant::now() + Duration::from_secs(30);
        while state.metrics.open_connections() < 10_000 {
            assert!(
                Instant::now() < deadline,
                "only {} connections registered",
                state.metrics.open_connections()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // 10k connections, zero new threads (slack for unrelated runtime
        // threads, not per-connection ones).
        let threads_after = process_threads();
        assert!(
            threads_after <= threads_before + 4,
            "connections must not cost threads: {threads_before} -> {threads_after}"
        );
        assert!(state.metrics.snapshot().connections_peak >= 10_000);

        // One more live exchange with the herd fully parked.
        let (status, metrics) = get_json(addr, "/v1/metrics");
        assert_eq!(status, 200);
        let connections = metrics.get("connections").expect("connections section");
        assert!(connections.get("open").and_then(Json::as_f64).unwrap() >= 10_000.0);

        // Release the herd: closing stdin lets the child exit, dropping
        // all 10k connections at once; the event loop reaps the EOFs.
        // Drain its remaining output first — a closed pipe would kill the
        // child mid-print and mask its real exit status.
        drop(child.stdin.take());
        for _ in lines.by_ref() {}
        let outcome = guard.0.take().unwrap().wait().expect("herd client exit");
        assert!(outcome.success(), "herd client reported failure");
    });
}

/// Raw HTTP exchange returning the full response text (head + body) so
/// tests can inspect response headers.
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: cocoon\r\nConnection: close\r\n");
    match body {
        Some(body) => request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len())),
        None => request.push_str("\r\n"),
    }
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// Structural checks over a Prometheus text exposition: only `# HELP` /
/// `# TYPE` comments, every histogram series' cumulative buckets monotone
/// over ascending `le` bounds, ending at `+Inf` equal to the series'
/// `_count`.
fn assert_prometheus_well_formed(text: &str) {
    use std::collections::HashMap;
    let mut buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "), "{line}");
            continue;
        }
        let (series, value) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("no sample value: {line}"));
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("non-numeric sample: {line}"));
        let Some((name, rest)) = series.split_once('{') else { continue };
        let labels = rest.strip_suffix('}').unwrap_or_else(|| panic!("unclosed labels: {line}"));
        if let Some(metric) = name.strip_suffix("_bucket") {
            let le = labels
                .split(',')
                .find_map(|kv| kv.strip_prefix("le=\""))
                .map(|v| v.trim_end_matches('"'))
                .unwrap_or_else(|| panic!("bucket without le: {line}"));
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().expect("le bound") };
            let others: Vec<&str> = labels.split(',').filter(|kv| !kv.starts_with("le=")).collect();
            buckets
                .entry(format!("{metric}{{{}}}", others.join(",")))
                .or_default()
                .push((le, value));
        } else if let Some(metric) = name.strip_suffix("_count") {
            counts.insert(format!("{metric}{{{labels}}}"), value);
        }
    }
    assert!(!buckets.is_empty(), "no histogram series in the exposition");
    for (key, series) in buckets {
        for pair in series.windows(2) {
            assert!(pair[0].0 < pair[1].0, "le bounds must ascend: {key}");
            assert!(pair[0].1 <= pair[1].1, "cumulative buckets must be monotone: {key} {pair:?}");
        }
        let &(last_le, last) = series.last().expect("non-empty series");
        assert!(last_le.is_infinite(), "{key} must end at +Inf");
        let count = counts.get(&key).unwrap_or_else(|| panic!("no _count for {key}"));
        assert_eq!(last, *count, "+Inf bucket equals _count: {key}");
    }
}

#[test]
fn request_ids_echo_and_prometheus_metrics_parse() {
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        // Seed the latency histograms with one full clean.
        let (status, _) = http(addr, "POST", "/v1/clean", Some(&clean_body(&messy_csv())));
        assert_eq!(status, 200);

        // Every response echoes its trace id, and ids are monotonic.
        let id_of = |raw: &str| -> u64 {
            raw.lines()
                .find_map(|l| l.strip_prefix("X-Request-Id: "))
                .unwrap_or_else(|| panic!("no X-Request-Id in {raw:.300}"))
                .trim()
                .parse()
                .expect("id parses")
        };
        let first = id_of(&http_raw(addr, "GET", "/v1/metrics", None));
        let second = id_of(&http_raw(addr, "GET", "/v1/metrics", None));
        assert!(second > first, "request ids are monotonic: {first} then {second}");

        // `/v1/metrics` grew a latency section with endpoint and stage
        // percentiles, including the LLM batch round-trip histogram.
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let latency = metrics.get("latency").expect("latency section");
        let clean = latency
            .get("endpoints")
            .and_then(|e| e.get("/v1/clean"))
            .unwrap_or_else(|| panic!("no /v1/clean latency: {latency}"));
        assert_eq!(clean.get("count").and_then(Json::as_f64), Some(1.0));
        let p50 = clean.get("p50_us").and_then(Json::as_f64).expect("p50_us");
        let p99 = clean.get("p99_us").and_then(Json::as_f64).expect("p99_us");
        assert!(p50 > 0.0 && p50 <= p99, "percentiles ordered: p50 {p50}, p99 {p99}");
        let stages = latency.get("stages").expect("stages section");
        assert!(stages.get("llm_batch").is_some(), "batch round-trips recorded: {stages}");

        // `GET /metrics` renders the same state as Prometheus text.
        let (status, text) = http(addr, "GET", "/metrics", None);
        assert_eq!(status, 200, "{text}");
        assert_prometheus_well_formed(&text);
        assert!(text.contains("cocoon_requests_total"), "{text:.400}");
        assert!(text.contains("cocoon_request_duration_seconds_bucket{endpoint=\"/v1/clean\""));
        assert!(text.contains("cocoon_stage_duration_seconds_bucket{stage=\"llm_batch\""));
    });
}

#[test]
fn slow_streamed_clean_span_tree_accounts_for_wall_time() {
    // The tracing acceptance bar: on a deliberately slow streamed-CSV clean
    // (tiny profiling chunks on Movies), the recorded span tree must
    // account for >= 95% of the server-measured wall time — contiguous
    // root segments from head parse to response write, with the pipeline
    // stages and LLM batch round-trips nested under the handler span.
    let movies_csv = csv::write_str(&cocoon_datasets::movies::generate().dirty);
    let config = ServerConfig { profile_chunk_rows: 3, ..test_config() };
    with_server(config, |handle| {
        let addr = handle.addr();
        let (status, _) = http_with_headers(
            addr,
            "POST",
            "/v1/clean",
            &[("Content-Type", "text/csv"), ("Accept", "text/csv")],
            Some(&movies_csv),
        );
        assert_eq!(status, 200);

        let traces = handle.state().obs.recent_traces();
        let trace = traces.iter().find(|t| t.route == "/v1/clean").expect("clean trace");
        assert_eq!((trace.status, trace.bytes > 0), (200, true));

        let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
        let root_ns: u64 = roots.iter().map(|s| s.duration_ns).sum();
        assert!(
            root_ns as f64 >= trace.total_ns as f64 * 0.95,
            "root segments account for wall time: {root_ns} of {} ns over {:?}",
            trace.total_ns,
            roots.iter().map(|s| (s.name, s.duration_ns)).collect::<Vec<_>>(),
        );
        let root_names: Vec<&str> = roots.iter().map(|s| s.name).collect();
        for expected in ["head_parse", "csv_stream", "queue_wait", "handler", "write"] {
            assert!(root_names.contains(&expected), "missing root {expected}: {root_names:?}");
        }

        let handler = trace.spans.iter().position(|s| s.name == "handler").expect("handler span");
        let children: Vec<&str> =
            trace.spans.iter().filter(|s| s.parent == Some(handler)).map(|s| s.name).collect();
        let stage_spans = children.iter().filter(|n| **n != "llm_batch").count();
        assert_eq!(
            stage_spans, 8,
            "all eight pipeline stages nest under the handler: {children:?}"
        );
        let batch = trace
            .spans
            .iter()
            .find(|s| s.name == "llm_batch")
            .unwrap_or_else(|| panic!("LLM batches nest under the handler: {children:?}"));
        assert_eq!(batch.parent, Some(handler));
        for attr in ["batch_size", "coalesced_total", "rate_limit_wait_us", "backend_us"] {
            assert!(batch.attrs.iter().any(|(k, _)| *k == attr), "batch attr {attr}");
        }
    });
}

#[test]
fn stage_latency_histograms_match_a_direct_observer_run() {
    use cocoon_core::{RunProgress, StageObserver, StageTiming};
    use std::sync::{Arc, Mutex};

    // A library user watching the same pipeline through the public
    // `StageObserver` hook must see exactly the stages the server's
    // latency registry aggregates.
    #[derive(Default)]
    struct Collect(Mutex<Vec<StageTiming>>);
    impl StageObserver for Collect {
        fn stage_finished(&self, timing: StageTiming) {
            self.0.lock().unwrap().push(timing);
        }
    }
    let csv_text = messy_csv();
    let table = csv::read_str(&csv_text).expect("fixture parses");
    let collector = Arc::new(Collect::default());
    let progress = RunProgress::new();
    progress.set_observer(collector.clone());
    Cleaner::new(SimLlm::new()).clean_with_progress(&table, &progress).expect("direct clean");
    let direct: Vec<StageTiming> = std::mem::take(&mut collector.0.lock().unwrap());
    assert!(!direct.is_empty(), "the direct run reported stages");

    with_server(test_config(), |handle| {
        let addr = handle.addr();
        let (status, _) = http(addr, "POST", "/v1/clean", Some(&clean_body(&csv_text)));
        assert_eq!(status, 200);

        // Identical stage label sets, one sample per stage for one clean.
        let histograms = handle.state().obs.stage_histograms();
        let mut server_stages: Vec<&str> = histograms.iter().map(|(name, _)| *name).collect();
        let mut direct_stages: Vec<&str> = direct.iter().map(|t| t.stage).collect();
        server_stages.sort_unstable();
        direct_stages.sort_unstable();
        assert_eq!(server_stages, direct_stages);
        for (name, histogram) in &histograms {
            assert_eq!(histogram.count(), 1, "{name}");
            assert!(histogram.max() > 0, "{name} recorded a duration");
        }

        // `/v1/metrics` reports the same labels, with the single-sample
        // percentile bracketing the recorded duration (bucket upper bound,
        // so >= the true value up to microsecond truncation).
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let stages = metrics.get("latency").and_then(|l| l.get("stages")).expect("stages");
        for (name, histogram) in &histograms {
            let entry = stages.get(name).unwrap_or_else(|| panic!("{name} missing: {stages}"));
            assert_eq!(entry.get("count").and_then(Json::as_f64), Some(1.0), "{name}");
            let p50 = entry.get("p50_us").and_then(Json::as_f64).expect("p50_us");
            let p99 = entry.get("p99_us").and_then(Json::as_f64).expect("p99_us");
            assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");
            let recorded_us = histogram.max() as f64 / 1_000.0;
            assert!(p99 + 1.0 >= recorded_us, "{name}: p99 {p99}us vs recorded {recorded_us}us");
        }
    });
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    with_server(test_config(), |handle| {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        for i in 0..3 {
            stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: cocoon\r\n\r\n").expect("send");
            // Read the framed response off the persistent connection.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).expect("head byte");
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).expect("utf-8 head");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "request {i}: {head}");
            assert!(head.contains("Connection: keep-alive"), "request {i}");
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length")
                .trim()
                .parse()
                .expect("length");
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).expect("body");
            cocoon_llm::json::parse(std::str::from_utf8(&body).unwrap()).expect("body json");
        }
    });
}

/// The review fixture: one high-confidence typo ("cofffee") and one
/// low-confidence misplaced concept ("Hindi" in a country column), so a
/// 0.9 threshold auto-applies the first and withholds exactly the second.
fn review_csv() -> String {
    let mut text = String::from("drink,country\n");
    for _ in 0..50 {
        text.push_str("coffee,USA\n");
    }
    for _ in 0..10 {
        text.push_str("tea,India\n");
    }
    text.push_str("cofffee,Hindi\n");
    text
}

/// A clean request over [`review_csv`] with the string-outliers stage
/// isolated and the given confidence threshold, via the wire config.
fn review_body(threshold: f64) -> String {
    let config = cocoon_core::CleanerConfig {
        confidence_threshold: threshold,
        ..cocoon_core::CleanerConfig::only_issue("string_outliers")
    };
    format!(
        "{{\"csv\": {}, \"config\": {}}}",
        cocoon_llm::json::escape(&review_csv()),
        config.to_json()
    )
}

#[test]
fn withheld_repair_review_roundtrip_matches_unconditional_clean() {
    // The acceptance bar for the review loop: a repair withheld by the
    // confidence threshold is surfaced via GET /v1/reviews, applied by
    // POST …/accept, and the final table is byte-identical to what a
    // threshold-0.0 clean of the same request produces directly.
    with_server(test_config(), |handle| {
        let addr = handle.addr();

        // The unconditional run: every repair applied inline.
        let (status, body) = http(addr, "POST", "/v1/clean", Some(&review_body(0.0)));
        assert_eq!(status, 200, "{body}");
        let unconditional = cocoon_llm::json::parse(&body).expect("json");
        let final_csv =
            unconditional.get("cleaned_csv").and_then(Json::as_str).expect("csv").to_string();
        assert!(!final_csv.contains("Hindi"), "threshold 0.0 repairs everything");
        assert!(unconditional.get("pending").and_then(Json::as_array).unwrap().is_empty());

        // The gated run: the typo auto-applies, the misplaced value waits.
        let (status, body) = http(addr, "POST", "/v1/clean", Some(&review_body(0.9)));
        assert_eq!(status, 200, "{body}");
        let gated = cocoon_llm::json::parse(&body).expect("json");
        let gated_csv = gated.get("cleaned_csv").and_then(Json::as_str).expect("csv");
        assert!(gated_csv.contains("Hindi"), "the low-confidence repair is withheld");
        assert!(!gated_csv.contains("cofffee"), "the high-confidence repair auto-applied");
        let pending = gated.get("pending").and_then(Json::as_array).expect("pending");
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].get("issue").and_then(Json::as_str), Some("String Outliers"));
        assert!(pending[0].get("confidence").and_then(Json::as_f64).unwrap() < 0.9);
        // Applied ops report their confidence on the wire too.
        let ops = gated.get("ops").and_then(Json::as_array).expect("ops");
        assert!(ops.iter().all(|op| {
            let c = op.get("confidence").and_then(Json::as_f64).unwrap();
            (0.9..=1.0).contains(&c)
        }));

        // The withheld repair is listed for review.
        let (status, reviews) = get_json(addr, "/v1/reviews");
        assert_eq!(status, 200);
        assert_eq!(reviews.get("total").and_then(Json::as_f64), Some(1.0));
        let items = reviews.get("reviews").and_then(Json::as_array).expect("reviews");
        let item = &items[0];
        assert_eq!(item.get("status").and_then(Json::as_str), Some("pending"));
        assert_eq!(item.get("issue").and_then(Json::as_str), Some("String Outliers"));
        assert_eq!(item.get("job_id"), Some(&Json::Null), "sync cleans carry no job id");
        assert!(item.get("sql").and_then(Json::as_str).unwrap().contains("SELECT"));
        assert!(item
            .get("confidence_detail")
            .and_then(Json::as_str)
            .unwrap()
            .contains("self-report"));
        let id = item.get("id").and_then(Json::as_f64).expect("id") as u64;

        // Accepting applies the repair; the result equals the
        // unconditional clean, byte for byte.
        let accept_path = format!("/v1/reviews/{id}/accept");
        let (status, body) = http(addr, "POST", &accept_path, None);
        assert_eq!(status, 200, "{body}");
        let accepted = cocoon_llm::json::parse(&body).expect("json");
        assert_eq!(accepted.get("status").and_then(Json::as_str), Some("accepted"));
        assert_eq!(
            accepted.get("cleaned_csv").and_then(Json::as_str),
            Some(final_csv.as_str()),
            "review-approved table == unconditional clean"
        );
        assert!(accepted.get("cells_changed").and_then(Json::as_f64).unwrap() >= 1.0);

        // A second accept replays the identical outcome.
        let (status, replay) = http(addr, "POST", &accept_path, None);
        assert_eq!(status, 200);
        assert_eq!(replay, body, "double accept is idempotent");

        // The listing now shows the item accepted, and metrics saw it all.
        let (_, reviews) = get_json(addr, "/v1/reviews");
        let items = reviews.get("reviews").and_then(Json::as_array).unwrap();
        assert_eq!(items[0].get("status").and_then(Json::as_str), Some("accepted"));
        let (_, metrics) = get_json(addr, "/v1/metrics");
        let reviews = metrics.get("reviews").expect("reviews section");
        assert!(reviews.get("listed").and_then(Json::as_f64).unwrap() >= 2.0);
        assert_eq!(reviews.get("accept_requests").and_then(Json::as_f64), Some(2.0));
        assert_eq!(reviews.get("accepted").and_then(Json::as_f64), Some(1.0));
        assert_eq!(reviews.get("pending").and_then(Json::as_f64), Some(0.0));
    });
}

#[test]
fn review_conflicts_and_bad_requests_answer_cleanly() {
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        let (status, _) = http(addr, "POST", "/v1/clean", Some(&review_body(0.9)));
        assert_eq!(status, 200);
        let (_, reviews) = get_json(addr, "/v1/reviews");
        let id = reviews.get("reviews").and_then(Json::as_array).unwrap()[0]
            .get("id")
            .and_then(Json::as_f64)
            .unwrap() as u64;

        // Reject, idempotently; then accepting the rejected item is 409.
        let reject_path = format!("/v1/reviews/{id}/reject");
        assert_eq!(http(addr, "POST", &reject_path, None).0, 200);
        assert_eq!(http(addr, "POST", &reject_path, None).0, 200, "repeat reject");
        let (status, body) = http(addr, "POST", &format!("/v1/reviews/{id}/accept"), None);
        assert_eq!(status, 409, "{body}");

        // Routing edges: unknown ids 404, malformed ids 400, unknown
        // actions 404, wrong methods 405.
        assert_eq!(http(addr, "POST", "/v1/reviews/99999/accept", None).0, 404);
        assert_eq!(http(addr, "POST", "/v1/reviews/abc/accept", None).0, 400);
        assert_eq!(http(addr, "POST", &format!("/v1/reviews/{id}/promote"), None).0, 404);
        assert_eq!(http(addr, "GET", &format!("/v1/reviews/{id}/accept"), None).0, 405);
        assert_eq!(http(addr, "POST", "/v1/reviews", None).0, 405);

        // None of that disturbed the store: the listing still serves.
        let (status, reviews) = get_json(addr, "/v1/reviews");
        assert_eq!(status, 200);
        assert_eq!(reviews.get("total").and_then(Json::as_f64), Some(1.0));
    });
}

#[test]
fn review_actions_racing_job_deletion_stay_consistent() {
    // Fault injection: reviews born from an async job race
    // `DELETE /v1/jobs/{id}`. Whatever the interleaving, accepts answer
    // 200 or 404 (never a 5xx, never a poisoned lock), the delete wins
    // eventually, and the store keeps serving.
    with_server(test_config(), |handle| {
        let addr = handle.addr();
        let submit = |body: &str| -> u64 {
            let (status, submitted) = http(addr, "POST", "/v1/jobs", Some(body));
            assert_eq!(status, 202, "{submitted}");
            cocoon_llm::json::parse(&submitted).unwrap().get("id").unwrap().as_f64().unwrap() as u64
        };
        let poll_done = |id: u64| {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let (status, view) = get_json(addr, &format!("/v1/jobs/{id}"));
                assert_eq!(status, 200);
                if view.get("status").and_then(Json::as_str) == Some("done") {
                    return;
                }
                assert!(Instant::now() < deadline, "job did not finish: {view}");
                std::thread::sleep(Duration::from_millis(5));
            }
        };

        let job = submit(&review_body(0.9));
        poll_done(job);
        let (_, reviews) = get_json(addr, "/v1/reviews");
        let item = &reviews.get("reviews").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            item.get("job_id").and_then(Json::as_f64),
            Some(job as f64),
            "the review remembers its job"
        );
        let review = item.get("id").and_then(Json::as_f64).unwrap() as u64;

        // Race the accept against the job deletion.
        let accept_path = format!("/v1/reviews/{review}/accept");
        let delete_path = format!("/v1/jobs/{job}");
        let (accept, delete) = std::thread::scope(|scope| {
            let accept = scope.spawn(|| http(addr, "POST", &accept_path, None));
            let delete = scope.spawn(|| http(addr, "DELETE", &delete_path, None));
            (accept.join().expect("accept client"), delete.join().expect("delete client"))
        });
        assert_eq!(delete.0, 204, "{}", delete.1);
        assert!(
            accept.0 == 200 || accept.0 == 404,
            "accept saw the item or its clean absence, got {}: {}",
            accept.0,
            accept.1
        );

        // After the dust settles the review is gone for good, and both
        // verbs answer 404 — not 500, not a hang.
        assert_eq!(http(addr, "POST", &accept_path, None).0, 404);
        assert_eq!(http(addr, "POST", &format!("/v1/reviews/{review}/reject"), None).0, 404);
        let (status, reviews) = get_json(addr, "/v1/reviews");
        assert_eq!(status, 200, "the store still serves after the race");
        assert_eq!(reviews.get("total").and_then(Json::as_f64), Some(0.0));
        let (_, metrics) = get_json(addr, "/v1/metrics");
        assert!(
            metrics.get("reviews").unwrap().get("dropped").and_then(Json::as_f64).unwrap() >= 1.0
        );
    });
}

#[test]
fn expired_job_reviews_answer_not_found() {
    // Reviews expire with their job TTL: acting on one after expiry is a
    // clean 404, and the sweep leaves the store healthy.
    let mut config = test_config();
    config.job_ttl = Some(Duration::from_millis(300));
    with_server(config, |handle| {
        let addr = handle.addr();
        let (status, _) = http(addr, "POST", "/v1/clean", Some(&review_body(0.9)));
        assert_eq!(status, 200);
        let (_, reviews) = get_json(addr, "/v1/reviews");
        assert_eq!(reviews.get("total").and_then(Json::as_f64), Some(1.0));
        let id = reviews.get("reviews").and_then(Json::as_array).unwrap()[0]
            .get("id")
            .and_then(Json::as_f64)
            .unwrap() as u64;

        std::thread::sleep(Duration::from_millis(600));
        assert_eq!(http(addr, "POST", &format!("/v1/reviews/{id}/accept"), None).0, 404);
        assert_eq!(http(addr, "POST", &format!("/v1/reviews/{id}/reject"), None).0, 404);
        let (status, reviews) = get_json(addr, "/v1/reviews");
        assert_eq!(status, 200);
        assert_eq!(reviews.get("total").and_then(Json::as_f64), Some(0.0));
    });
}
