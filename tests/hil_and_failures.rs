//! Human-in-the-loop behaviour and LLM failure injection, end to end.

use cocoon_core::{
    Cleaner, CleaningReview, Decision, DecisionHook, DetectionReview, IssueKind, RecordingHook,
    RejectIssues,
};
use cocoon_llm::{FailingLlm, ScriptedLlm, SimLlm};
use cocoon_table::csv;

fn messy() -> cocoon_table::Table {
    let mut text = String::from("id,lang\n");
    for i in 0..20 {
        text.push_str(&format!("r{i},eng\n"));
    }
    text.push_str("r20,English\nr21,N/A\n");
    csv::read_str(&text).unwrap()
}

#[test]
fn reviewer_rejections_are_honoured() {
    let table = messy();
    let cleaner = Cleaner::new(SimLlm::new());
    let mut reject_all = RejectIssues {
        rejected: vec![
            IssueKind::StringOutliers,
            IssueKind::PatternOutliers,
            IssueKind::DisguisedMissing,
            IssueKind::ColumnType,
            IssueKind::NumericOutliers,
            IssueKind::FunctionalDependency,
            IssueKind::Duplication,
            IssueKind::Uniqueness,
        ],
    };
    let run = cleaner.clean_with_hook(&table, &mut reject_all).unwrap();
    assert!(run.ops.is_empty(), "a reviewer that rejects everything blocks all repairs");
    assert_eq!(run.table, table);
    assert!(!run.notes.is_empty());
}

#[test]
fn reviewer_can_adjust_a_mapping() {
    struct AdjustLang;
    impl DecisionHook for AdjustLang {
        fn review_detection(&mut self, _r: &DetectionReview<'_>) -> Decision {
            Decision::Approve
        }
        fn review_cleaning(&mut self, review: &CleaningReview<'_>) -> Decision {
            if review.issue == IssueKind::StringOutliers {
                // The human overrides the model: map to "en" instead.
                Decision::AdjustMapping(vec![("English".into(), "en".into())])
            } else {
                Decision::Approve
            }
        }
    }
    let cleaner = Cleaner::new(SimLlm::new());
    let run = cleaner.clean_with_hook(&messy(), &mut AdjustLang).unwrap();
    assert_eq!(run.table.render_cell(20, 1).unwrap(), "en");
}

#[test]
fn recording_hook_sees_every_review() {
    let cleaner = Cleaner::new(SimLlm::new());
    let mut recorder = RecordingHook::default();
    let run = cleaner.clean_with_hook(&messy(), &mut recorder).unwrap();
    assert!(!run.ops.is_empty());
    assert!(
        recorder.detections.len() + recorder.cleanings.len() >= run.ops.len(),
        "each applied op passed at least one review"
    );
}

#[test]
fn dead_llm_degrades_to_noop_without_panicking() {
    let table = messy();
    let run = Cleaner::new(FailingLlm).clean(&table).unwrap();
    assert!(run.ops.is_empty());
    assert_eq!(run.table, table);
    assert!(run.notes.iter().all(|n| n.contains("degraded")));
}

#[test]
fn garbage_responses_degrade_per_column() {
    // A model that answers prose (no JSON/YAML) for every prompt.
    let garbage: Vec<String> = (0..64).map(|_| "I'm sorry, I cannot help.".into()).collect();
    let table = messy();
    let run = Cleaner::new(ScriptedLlm::new(garbage)).clean(&table).unwrap();
    assert!(run.ops.is_empty());
    assert_eq!(run.table, table);
    assert!(!run.notes.is_empty());
}

#[test]
fn half_broken_llm_applies_only_parseable_steps() {
    // First (detection) answer is valid and flags the column; the cleaning
    // answer is malformed → the column degrades; everything after fails.
    let responses = vec![
        r#"{"Reasoning": "mixed", "Unusualness": true, "Summary": "mixed reps"}"#.to_string(),
        "not yaml at all".to_string(),
    ];
    let table = messy();
    let run = Cleaner::new(ScriptedLlm::new(responses)).clean(&table).unwrap();
    assert!(run.ops.is_empty());
    assert_eq!(run.table, table);
}
