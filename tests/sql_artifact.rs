//! The SQL artifact is real: every statement the pipeline emits parses back
//! through the workspace's own SQL parser, and the per-column rewrites
//! reproduce the cleaned table when re-executed.

use cocoon_core::Cleaner;
use cocoon_llm::SimLlm;
use cocoon_sql::{execute, parse_select};
use cocoon_table::csv;

fn messy_csv() -> String {
    let mut text = String::from("id,lang,score\n");
    for i in 0..30 {
        text.push_str(&format!("r{i},eng,{}%\n", 60 + i));
    }
    text.push_str("r30,English,91%\nr31,eng,N/A\n");
    text
}

#[test]
fn emitted_sql_parses() {
    let dirty = csv::read_str(&messy_csv()).unwrap();
    let run = Cleaner::new(SimLlm::new()).clean(&dirty).unwrap();
    assert!(!run.ops.is_empty());
    for op in &run.ops {
        let sql = op.rendered_sql();
        let parsed =
            parse_select(&sql).unwrap_or_else(|e| panic!("emitted SQL must parse: {e}\n{sql}"));
        // Comments are not part of the AST; the parsed statement matches
        // the op's own select.
        let mut expected = op.sql.clone();
        expected.comment = None;
        assert_eq!(parsed, expected);
    }
}

#[test]
fn replaying_parsed_sql_reproduces_the_cleaned_table() {
    let dirty = csv::read_str(&messy_csv()).unwrap();
    let run = Cleaner::new(SimLlm::new()).clean(&dirty).unwrap();
    // Re-apply each op by parsing its rendered SQL and executing it.
    let mut table = dirty;
    for op in &run.ops {
        let parsed = parse_select(&op.rendered_sql()).expect("parses");
        table = execute(&parsed, &table).expect("executes");
    }
    // Cell content must agree with the pipeline's own output (schema types
    // flow through the same CAST expressions).
    assert_eq!(table, run.table);
}

#[test]
fn sql_script_contains_reasoning_comments() {
    let dirty = csv::read_str(&messy_csv()).unwrap();
    let run = Cleaner::new(SimLlm::new()).clean(&dirty).unwrap();
    let script = run.sql_script();
    assert!(script.contains("-- ["));
    assert!(script.contains("statistical detection:"));
    assert!(script.contains("semantic reasoning:"));
}
