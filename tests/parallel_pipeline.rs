//! Concurrency and caching guarantees of the detect/decide pipeline:
//! byte-identical output at any thread count, and repeat-clean completions
//! served from the prompt cache.

use cocoon_core::{Cleaner, CleanerConfig, CleaningRun};
use cocoon_llm::{CachedLlm, SimLlm, Transcript};
use cocoon_table::csv;

/// The multi-issue fixture from the pipeline unit tests: string outliers,
/// pattern outliers, DMVs, casts and numeric outliers all at once.
fn messy() -> cocoon_table::Table {
    let mut csv_text = String::from("record_id,lang,admission,EmergencyService,rating\n");
    for i in 0..20 {
        csv_text.push_str(&format!("r{i},eng,01/02/2003,yes,7.5\n"));
    }
    csv_text.push_str("r20,English,2003-04-05,no,8.0\n");
    csv_text.push_str("r21,eng,01/02/2003,N/A,99.0\n");
    csv::read_str(&csv_text).unwrap()
}

fn clean_with_threads(table: &cocoon_table::Table, threads: usize) -> CleaningRun {
    let config = CleanerConfig { threads: Some(threads), ..CleanerConfig::default() };
    let cleaner = Cleaner::with_config(SimLlm::new(), config).unwrap();
    cleaner.clean(table).expect("pipeline")
}

/// Byte-level comparison of two runs: table cells and schema, op order and
/// content (via the rendered SQL script), and every note.
fn assert_runs_identical(a: &CleaningRun, b: &CleaningRun) {
    assert_eq!(a.table, b.table);
    assert_eq!(a.sql_script(), b.sql_script());
    assert_eq!(
        a.ops.iter().map(|o| (o.issue, o.column.clone(), o.cells_changed)).collect::<Vec<_>>(),
        b.ops.iter().map(|o| (o.issue, o.column.clone(), o.cells_changed)).collect::<Vec<_>>(),
    );
    assert_eq!(a.notes, b.notes);
}

#[test]
fn messy_fixture_identical_at_1_and_8_threads() {
    let table = messy();
    let sequential = clean_with_threads(&table, 1);
    let parallel = clean_with_threads(&table, 8);
    assert!(!sequential.ops.is_empty());
    assert_runs_identical(&sequential, &parallel);
}

#[test]
fn movies_identical_at_1_and_8_threads() {
    let dataset = cocoon_datasets::movies::generate();
    let sequential = clean_with_threads(&dataset.dirty, 1);
    let parallel = clean_with_threads(&dataset.dirty, 8);
    assert!(!sequential.ops.is_empty());
    assert_runs_identical(&sequential, &parallel);
}

#[test]
fn cached_llm_cuts_call_count_on_repeat_clean() {
    let table = messy();
    let cleaner = Cleaner::new(CachedLlm::new(Transcript::new(SimLlm::new())));

    let first = cleaner.clean(&table).expect("first clean");
    let calls_after_first = cleaner.llm().inner().call_count();
    assert!(calls_after_first > 0, "the first clean must reach the model");
    assert_eq!(cleaner.llm().hits(), 0, "a cold cache cannot hit");

    let second = cleaner.clean(&table).expect("second clean");
    let calls_after_second = cleaner.llm().inner().call_count();
    assert_eq!(
        calls_after_second, calls_after_first,
        "a repeat clean of the same table must be served entirely from the cache"
    );
    assert!(cleaner.llm().hits() >= calls_after_first, "every repeat prompt hits");
    // Cache replay is invisible in the output.
    assert_eq!(first.table, second.table);
    assert_eq!(first.sql_script(), second.sql_script());
    assert_eq!(first.notes, second.notes);
}

#[test]
fn cached_llm_is_transparent_for_a_cold_clean() {
    let table = messy();
    let cached = Cleaner::new(CachedLlm::new(SimLlm::new())).clean(&table).expect("cached");
    let plain = Cleaner::new(SimLlm::new()).clean(&table).expect("plain");
    assert_eq!(cached.table, plain.table);
    assert_eq!(cached.sql_script(), plain.sql_script());
    assert_eq!(cached.notes, plain.notes);
}
