//! Concurrency and caching guarantees of the detect/decide pipeline:
//! byte-identical output at any thread count, and repeat-clean completions
//! served from the prompt cache.

use cocoon_core::{Cleaner, CleanerConfig, CleaningRun};
use cocoon_llm::{CachedLlm, SimLlm, Transcript};
use cocoon_table::csv;

/// The multi-issue fixture from the pipeline unit tests: string outliers,
/// pattern outliers, DMVs, casts and numeric outliers all at once.
fn messy() -> cocoon_table::Table {
    let mut csv_text = String::from("record_id,lang,admission,EmergencyService,rating\n");
    for i in 0..20 {
        csv_text.push_str(&format!("r{i},eng,01/02/2003,yes,7.5\n"));
    }
    csv_text.push_str("r20,English,2003-04-05,no,8.0\n");
    csv_text.push_str("r21,eng,01/02/2003,N/A,99.0\n");
    csv::read_str(&csv_text).unwrap()
}

fn clean_with_threads(table: &cocoon_table::Table, threads: usize) -> CleaningRun {
    let config = CleanerConfig { threads: Some(threads), ..CleanerConfig::default() };
    let cleaner = Cleaner::with_config(SimLlm::new(), config).unwrap();
    cleaner.clean(table).expect("pipeline")
}

/// Byte-level comparison of two runs: table cells and schema, op order and
/// content (via the rendered SQL script), and every note.
fn assert_runs_identical(a: &CleaningRun, b: &CleaningRun) {
    assert_eq!(a.table, b.table);
    assert_eq!(a.sql_script(), b.sql_script());
    assert_eq!(
        a.ops.iter().map(|o| (o.issue, o.column.clone(), o.cells_changed)).collect::<Vec<_>>(),
        b.ops.iter().map(|o| (o.issue, o.column.clone(), o.cells_changed)).collect::<Vec<_>>(),
    );
    assert_eq!(a.notes, b.notes);
}

#[test]
fn messy_fixture_identical_at_1_and_8_threads() {
    let table = messy();
    let sequential = clean_with_threads(&table, 1);
    let parallel = clean_with_threads(&table, 8);
    assert!(!sequential.ops.is_empty());
    assert_runs_identical(&sequential, &parallel);
}

#[test]
fn movies_identical_at_1_and_8_threads() {
    let dataset = cocoon_datasets::movies::generate();
    let sequential = clean_with_threads(&dataset.dirty, 1);
    let parallel = clean_with_threads(&dataset.dirty, 8);
    assert!(!sequential.ops.is_empty());
    assert_runs_identical(&sequential, &parallel);
}

#[test]
fn cached_llm_cuts_call_count_on_repeat_clean() {
    let table = messy();
    let cleaner = Cleaner::new(CachedLlm::new(Transcript::new(SimLlm::new())));

    let first = cleaner.clean(&table).expect("first clean");
    let calls_after_first = cleaner.llm().inner().call_count();
    assert!(calls_after_first > 0, "the first clean must reach the model");
    assert_eq!(cleaner.llm().hits(), 0, "a cold cache cannot hit");

    let second = cleaner.clean(&table).expect("second clean");
    let calls_after_second = cleaner.llm().inner().call_count();
    assert_eq!(
        calls_after_second, calls_after_first,
        "a repeat clean of the same table must be served entirely from the cache"
    );
    assert!(cleaner.llm().hits() >= calls_after_first, "every repeat prompt hits");
    // Cache replay is invisible in the output.
    assert_eq!(first.table, second.table);
    assert_eq!(first.sql_script(), second.sql_script());
    assert_eq!(first.notes, second.notes);
}

#[test]
fn cached_llm_is_transparent_for_a_cold_clean() {
    let table = messy();
    let cached = Cleaner::new(CachedLlm::new(SimLlm::new())).clean(&table).expect("cached");
    let plain = Cleaner::new(SimLlm::new()).clean(&table).expect("plain");
    assert_eq!(cached.table, plain.table);
    assert_eq!(cached.sql_script(), plain.sql_script());
    assert_eq!(cached.notes, plain.notes);
}

mod confidence_differential {
    use super::*;
    use proptest::prelude::*;

    /// A generated messy table: a unique-id column (so the deduplication
    /// stage never collapses it), a skewed text column with optional typo
    /// variants and a disguised-missing token, and a numeric column with
    /// an optional outlier — enough surface to trigger several stages and
    /// their confidence sampling.
    fn messy_table() -> impl Strategy<Value = cocoon_table::Table> {
        let dominant = "[a-d]{3}";
        (dominant, 14usize..24, 0usize..3, prop_oneof![Just(""), Just("N/A"), Just("unknown")])
            .prop_map(|(word, rows, typos, dmv)| {
                let mut text = String::from("record_id,token,rating\n");
                for i in 0..rows {
                    text.push_str(&format!("r{i},{word},7.5\n"));
                }
                for i in 0..typos {
                    // A doubled first letter: the SimLlm oracle repairs it
                    // as a high-confidence typo of the dominant token.
                    let first = word.chars().next().unwrap();
                    text.push_str(&format!("t{i},{first}{word},8.0\n"));
                }
                if !dmv.is_empty() {
                    text.push_str(&format!("d0,{dmv},99.0\n"));
                }
                csv::read_str(&text).expect("generated csv parses")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The threshold-policy differential: at `confidence_threshold`
        /// 0.0 the gate is unconditional — nothing is ever withheld, and
        /// the run (table, SQL script, ops, notes) is byte-identical at
        /// any thread count, so the confidence machinery (self-reports,
        /// sampled cross-variant re-asks through the batch path) cannot
        /// perturb the output it annotates.
        #[test]
        fn threshold_zero_is_unconditional_at_any_thread_count(
            table in messy_table(),
            threads in 2usize..9,
        ) {
            let zero = |threads: usize| {
                let config = CleanerConfig {
                    confidence_threshold: 0.0,
                    threads: Some(threads),
                    ..CleanerConfig::default()
                };
                Cleaner::with_config(SimLlm::new(), config).unwrap().clean(&table).expect("clean")
            };
            let sequential = zero(1);
            let parallel = zero(threads);
            prop_assert!(sequential.pending.is_empty(), "threshold 0.0 withholds nothing");
            prop_assert!(parallel.pending.is_empty());
            prop_assert_eq!(&sequential.table, &parallel.table);
            prop_assert_eq!(sequential.sql_script(), parallel.sql_script());
            prop_assert_eq!(&sequential.notes, &parallel.notes);
            // Every op carries a confidence in range, identically scored
            // on both runs.
            let scores = |run: &CleaningRun| -> Vec<String> {
                run.ops.iter().map(|o| o.confidence.describe()).collect()
            };
            prop_assert_eq!(scores(&sequential), scores(&parallel));
            for op in &sequential.ops {
                let score = op.confidence.score();
                prop_assert!((0.0..=1.0).contains(&score));
            }
        }
    }
}
