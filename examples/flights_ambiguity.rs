//! The Flights ambiguity (§3.2 of the paper): `flight → actual time` is
//! statistically a near-FD, but actual times genuinely vary per report —
//! Cocoon's semantic review refuses to repair them, trading recall for
//! precision. This example shows the refusal and its effect on the score.
//!
//! ```sh
//! cargo run --release --example flights_ambiguity
//! ```

use cocoon_core::Cleaner;
use cocoon_eval::{evaluate, Equivalence};
use cocoon_llm::SimLlm;

fn main() {
    let dataset = cocoon_datasets::flights::generate();
    println!("Flights benchmark: {}", dataset.size_label());

    // Show the raw disagreement the paper describes: one flight, many
    // reported actual arrival times.
    let schema = dataset.dirty.schema();
    let flight_col = schema.index_of("flight").unwrap();
    let arr_col = schema.index_of("actual_arrival_time").unwrap();
    let first_flight = dataset.dirty.cell(0, flight_col).unwrap().render();
    println!("\nreports for flight {first_flight}:");
    for row in 0..dataset.dirty.height() {
        if dataset.dirty.cell(row, flight_col).unwrap().render() == first_flight {
            println!(
                "  source {:<16} actual arrival {}",
                dataset.dirty.cell(row, 1).unwrap().render(),
                dataset.dirty.cell(row, arr_col).unwrap().render()
            );
        }
    }

    let run = Cleaner::new(SimLlm::new()).clean(&dataset.dirty).expect("pipeline");

    println!("\nsemantic FD decisions:");
    for note in run.notes.iter().filter(|n| n.contains("FD")) {
        println!("  - {note}");
    }

    let e = evaluate(&dataset.dirty, &run.table, &dataset.truth, Equivalence::Lenient);
    println!(
        "\nscore: precision {:.2}, recall {:.2}, F1 {:.2}  (paper: 0.91 / 0.42 / 0.57)",
        e.prf.precision, e.prf.recall, e.prf.f1
    );
    println!(
        "The low recall is deliberate: {} actual-time variations are left as-is\n\
         because repairing them would be guessing (the paper argues these are\n\
         application issues, not data cleaning issues).",
        dataset
            .error_counts()
            .get(&cocoon_datasets::ErrorType::TimeVariation)
            .copied()
            .unwrap_or(0)
    );
}
