//! The human-in-the-loop mode of §2.2 / Appendix A: a reviewer sees every
//! detection and cleaning proposal (with the LLM's reasoning and the SQL
//! preview) and can approve, reject, or adjust it.
//!
//! ```sh
//! cargo run --release --example human_in_the_loop
//! ```

use cocoon_core::{Cleaner, CleaningReview, Decision, DecisionHook, DetectionReview, IssueKind};
use cocoon_llm::SimLlm;
use cocoon_table::csv;

/// A console "human": prints what the UI of Figure 4 would show and applies
/// a policy — approve everything except numeric-outlier nulling, and
/// override one language mapping.
struct ConsoleReviewer {
    reviews_seen: usize,
}

impl DecisionHook for ConsoleReviewer {
    fn review_detection(&mut self, review: &DetectionReview<'_>) -> Decision {
        self.reviews_seen += 1;
        println!(
            "[detection] {} on {:?}\n    statistics: {}\n    reasoning : {}",
            review.issue,
            review.column.unwrap_or("<table>"),
            review.statistical_evidence,
            review.llm_reasoning
        );
        if review.issue == IssueKind::NumericOutliers {
            println!("    -> human says: leave outliers alone in this run");
            return Decision::Reject;
        }
        println!("    -> approved");
        Decision::Approve
    }

    fn review_cleaning(&mut self, review: &CleaningReview<'_>) -> Decision {
        self.reviews_seen += 1;
        println!(
            "[cleaning ] {} on {:?} proposes {} value mappings",
            review.issue,
            review.column.unwrap_or("<table>"),
            review.mapping.len()
        );
        for (old, new) in review.mapping.iter().take(5) {
            println!("    {old:?} -> {new:?}");
        }
        if review.issue == IssueKind::StringOutliers
            && review.mapping.iter().any(|(old, _)| old == "English")
        {
            println!("    -> human adjusts: use 'en' instead of 'eng'");
            let adjusted = review
                .mapping
                .iter()
                .map(|(old, new)| {
                    if old == "English" {
                        (old.clone(), "en".to_string())
                    } else {
                        (old.clone(), new.clone())
                    }
                })
                .collect();
            return Decision::AdjustMapping(adjusted);
        }
        println!("    -> approved");
        Decision::Approve
    }
}

fn main() {
    let dirty_csv = "\
id,language,rating
a1,eng,7.5
a2,eng,8.0
a3,English,99.0
a4,eng,6.5
a5,fre,7.0
a6,eng,7.2
";
    let dirty = csv::read_str(dirty_csv).expect("valid CSV");
    let cleaner = Cleaner::new(SimLlm::new());
    let mut reviewer = ConsoleReviewer { reviews_seen: 0 };
    let run = cleaner.clean_with_hook(&dirty, &mut reviewer).expect("pipeline");

    println!("\n{} reviews were presented to the human.", reviewer.reviews_seen);
    println!("\ncleaned table:\n{}", run.table);
    println!("notes:");
    for note in &run.notes {
        println!("  - {note}");
    }
    // The adjusted mapping took effect; the rejected outlier repair did not.
    assert_eq!(run.table.render_cell(2, 1).unwrap(), "en");
    assert_eq!(run.table.render_cell(2, 2).unwrap(), "99.0");
}
