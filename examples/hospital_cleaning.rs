//! Clean the Hospital benchmark end to end and score the run against the
//! ground truth, reproducing Cocoon's row of Table 1 for this dataset.
//!
//! ```sh
//! cargo run --release --example hospital_cleaning
//! ```

use cocoon_core::{issue_summary, Cleaner};
use cocoon_eval::{evaluate, Equivalence};
use cocoon_llm::{SimLlm, Transcript};

fn main() {
    let dataset = cocoon_datasets::hospital::generate();
    println!(
        "Hospital benchmark: {} with {} annotated errors",
        dataset.size_label(),
        dataset.annotations.len()
    );

    let cleaner = Cleaner::new(Transcript::new(SimLlm::new()));
    let run = cleaner.clean(&dataset.dirty).expect("pipeline");

    println!("\nrepairs per issue type:");
    for (issue, ops, cells) in issue_summary(&run) {
        println!("  §{} {:<24} {ops:>3} ops, {cells:>5} cells", issue.section(), issue.name());
    }

    let lenient = evaluate(&dataset.dirty, &run.table, &dataset.truth, Equivalence::Lenient);
    let strict = evaluate(&dataset.dirty, &run.table, &dataset.truth, Equivalence::Strict);
    println!("\nTable-1 conventions (lenient): {}   (paper: 0.87 0.93 0.90)", lenient.prf);
    println!("Table-3 conventions (strict) : {}   (paper: 0.99 0.99 0.99)", strict.prf);

    println!(
        "\nLLM usage: {} calls, {} prompt + {} completion tokens",
        cleaner.llm().call_count(),
        cleaner.llm().total_usage().prompt_tokens,
        cleaner.llm().total_usage().completion_tokens
    );
}
