//! Quickstart: clean a messy CSV in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cocoon_core::{full_report, Cleaner};
use cocoon_llm::SimLlm;
use cocoon_table::csv;

fn main() {
    // A small table with the paper's flavour of problems: inconsistent
    // language representations (Example 1), a typo, a disguised missing
    // value, a boolean dressed as yes/no, and a percent-dressed number.
    let dirty_csv = "\
paper_id,language,reviewed,score
p01,eng,yes,91%
p02,eng,yes,85%
p03,eng,no,77%
p04,English,yes,88%
p05,eng,yes,95%
p06,fre,no,70%
p07,French,yes,82%
p08,enhg,yes,90%
p09,eng,N/A,66%
p10,eng,no,73%
";
    let dirty = csv::read_str(dirty_csv).expect("valid CSV");
    println!("dirty input:\n{dirty}");

    // The cleaner = the Cocoon pipeline + an LLM. `SimLlm` is the bundled
    // deterministic semantic oracle; any `cocoon_llm::ChatModel` works.
    let cleaner = Cleaner::new(SimLlm::new());
    let run = cleaner.clean(&dirty).expect("pipeline never panics");

    println!("cleaned output:\n{}", run.table);
    println!("{}", full_report(&run));
    println!("final SQL artifact:\n{}", run.sql_script());
}
