//! The output artifact is SQL (§2.2, Figures 4–5): "to ensure that the
//! error detection and cleaning processes are scalable, interpretable, and
//! reusable, we perform them using SQL queries." This example emits the
//! commented SQL script of a cleaning run, then proves it is *executable*
//! by re-parsing every statement with the workspace's SQL parser and
//! replaying it against the dirty table.
//!
//! ```sh
//! cargo run --release --example sql_pipeline
//! ```

use cocoon_core::Cleaner;
use cocoon_llm::SimLlm;
use cocoon_sql::{execute, parse_select};
use cocoon_table::csv;

fn main() {
    let dirty_csv = "\
beer,style,ounces,abv
hop czar,american ipa,12.0,0.065
lazy river,american pale ale,12 ounce,0.05
iron anchor,american porter,16 oz,N/A
golden moon,american ipa,12.0,0.072
night raven,oatmeal stout,12.0,0.058
copper fox,american ipa,12.0,0.061
";
    let dirty = csv::read_str(dirty_csv).expect("valid CSV");
    let run = Cleaner::new(SimLlm::new()).clean(&dirty).expect("pipeline");

    let script = run.sql_script();
    println!("--- emitted cleaning script -------------------------------\n");
    println!("{script}");

    // Replay: parse each emitted statement and execute it in order.
    println!("--- replaying the script through the SQL engine -----------\n");
    let mut table = dirty;
    for (i, statement) in script.split(";\n").filter(|s| s.contains("SELECT")).enumerate() {
        let select = parse_select(statement).expect("emitted SQL parses");
        table = execute(&select, &table).expect("emitted SQL executes");
        println!("applied step {}", i + 1);
    }
    assert_eq!(table, run.table, "replay must reproduce the pipeline output");
    println!("\nreplayed table equals the pipeline output:\n{table}");
}
